"""EdgeCacheServer: the asyncio runtime around the cache core.

One process hosts N region shards (one :class:`CacheService` each),
keys routed to their home shard by the paper's geographic hash
(:class:`~repro.service.routing.ShardDirectory`).  Clients speak a
JSON-lines TCP protocol: one request object per line, one response
object per line, ordered per connection.

What the server adds around the core:

* **shard workers** — each shard has an admission queue drained by a
  worker task; ops on one shard are admitted in arrival order while
  slow origin waits never block other shards (or later fresh hits on
  the same shard: the worker fans each admitted op out to its own
  task);
* **write dissemination** — an in-process
  :class:`~repro.ports.ConsistencyTransport`: an UpdatePush is applied
  at the home shard first (which folds eq. 2 into the TTR) and then at
  the replica shard, an invalidation floods every shard;
* **replica failover** — a get the home shard cannot serve (breaker
  open and no local copy, or deadline trip) is retried once against
  the key's replica shard (§2.4), marked as a degraded serve;
* **shard supervision** — a :class:`ShardSupervisor` watchdog detects
  a crashed or wedged worker, restarts it with exponential backoff,
  and warm-rebuilds a crashed shard's cache from replica-held copies
  before readmitting traffic;
* **overload shedding** — each shard bounds its admitted-but-unfinished
  work (``max_inflight``); past the bound, ops are refused with an
  explicit ``overloaded`` response (served class ``shed``) instead of
  growing the queue without bound.  Optional hot-key protection sheds
  or coalesces keys that exceed a request-rate threshold;
* **telemetry** — a sampler task publishes one row per interval to a
  :class:`~repro.obs.TelemetryBus`, feeding the same live-export /
  metrics-snapshot / ``--watch`` sinks the simulation uses, with the
  same series names — ``repro watch`` renders a service run unchanged;
* **graceful drain** — SIGTERM/SIGINT stops accepting connections,
  lets queued and in-flight ops finish, flushes a final telemetry row,
  writes the live export's end record, and exits 0.

The wire protocol (newline-delimited JSON)::

    {"op": "get", "key": 17}
    {"op": "put", "key": 17}
    {"op": "invalidate", "key": 17}
    {"op": "stats"}
    {"op": "ping"}
    {"op": "chaos", "action": "stall" | "resume"}       # origin switch
    {"op": "chaos", "action": "inject",
     "spec": "origin-error-rate:at=0,p=0.5,duration=2"}  # any fault spec
"""

from __future__ import annotations

import asyncio
import json
import signal
import sys
from dataclasses import dataclass, field
from typing import Dict, Optional, Set

import numpy as np

from repro.core.consistency import (
    ConsistencyScheme,
    PlainPush,
    PullEveryTime,
    PushAdaptivePull,
)
from repro.core.messages import Invalidation, UpdatePush
from repro.ports import CounterStatSink
from repro.resilience.backoff import BackoffPolicy
from repro.resilience.manager import ResilienceManager
from repro.service.chaos import ServiceFaultInjector
from repro.service.clock import WallClock
from repro.service.core import CacheResponse, CacheService
from repro.service.faultplan import (
    CHAOS_GRAMMAR,
    ServiceFaultPlan,
    ServiceFaultSpec,
)
from repro.service.origin import InMemoryOrigin
from repro.service.routing import ShardDirectory
from repro.service.supervision import ShardSupervisor
from repro.workload.database import Database

__all__ = [
    "EdgeCacheServer",
    "ServiceConfig",
    "WorkerOverloaded",
    "WorkerUnavailable",
    "build_scheme",
]

#: Hot-key protection policies (``off`` disables the tracker).
HOT_KEY_POLICIES = ("off", "shed", "coalesce")

#: Wire-protocol schemes -> constructors.
_SCHEMES = {
    "push-adaptive-pull": PushAdaptivePull,
    "plain-push": PlainPush,
    "pull-every-time": PullEveryTime,
}


def build_scheme(name: str) -> ConsistencyScheme:
    try:
        return _SCHEMES[name]()
    except KeyError:
        raise ValueError(
            f"unknown consistency scheme {name!r} "
            f"(choose from {sorted(_SCHEMES)})"
        ) from None


@dataclass
class ServiceConfig:
    """Everything ``repro serve`` needs to stand up an edge-cache tier."""

    host: str = "127.0.0.1"
    port: int = 7117
    n_shards: int = 4
    n_items: int = 500
    #: Per-shard dynamic cache capacity as a fraction of total database
    #: bytes (the paper expresses capacity the same way: 0.5 %-2.5 %).
    cache_fraction: float = 0.05
    seed: int = 1
    #: Simulated origin round-trip (seconds); 0 = instant origin.
    origin_latency: float = 0.0
    consistency: str = "push-adaptive-pull"
    #: Per-request latency budget (seconds); None disables deadlines.
    deadline: Optional[float] = 1.0
    suspect_after: float = 3.0
    breaker_cooldown: float = 2.0
    #: Origin retry budget per request (0 disables in-request retries;
    #: only answered failures consume it — stalls are the deadline's
    #: problem).
    origin_retries: int = 0
    #: First-retry backoff (seconds) when ``origin_retries > 0``.
    retry_backoff_base: float = 0.05
    #: Launch a hedged duplicate after a origin call has been slow for
    #: this many seconds; None disables hedging.
    hedge_after: Optional[float] = None
    #: Per-shard bound on admitted-but-unfinished ops; past it, new
    #: ops are shed with an ``overloaded`` response.  None = unbounded
    #: (the pre-survival behaviour).
    max_inflight: Optional[int] = 64
    #: Shard supervision (crash/wedge detection + backoff restarts).
    supervise: bool = True
    #: Seconds a worker may sit on queued work without progress before
    #: the supervisor declares it wedged.
    heartbeat_timeout: float = 1.0
    #: First-restart backoff (seconds) for a failed shard.
    restart_backoff_base: float = 0.05
    #: Warm-rebuild a crashed shard's cache from replica-held copies.
    warm_rebuild: bool = True
    #: Hot-key protection: "off", "shed", or "coalesce".
    hot_key_policy: str = "off"
    #: Requests per window that make a key hot.
    hot_key_threshold: int = 50
    #: Hot-key counting window (seconds).
    hot_key_window: float = 1.0
    #: Scripted chaos schedule executed on the server's clock.
    fault_plan: Optional[ServiceFaultPlan] = None
    #: Telemetry sampling interval (wall seconds).
    telemetry_interval: float = 1.0
    live_export: Optional[str] = None
    metrics_snapshot: Optional[str] = None
    watch: bool = False
    dashboard_mode: str = "auto"
    #: Auto-shutdown after this many wall seconds; None = run forever.
    duration: Optional[float] = None

    def __post_init__(self) -> None:
        if self.n_shards <= 0:
            raise ValueError(f"n_shards must be positive, got {self.n_shards}")
        if self.n_items <= 0:
            raise ValueError(f"n_items must be positive, got {self.n_items}")
        if self.cache_fraction <= 0:
            raise ValueError(
                f"cache_fraction must be positive, got {self.cache_fraction}"
            )
        if self.telemetry_interval <= 0:
            raise ValueError(
                f"telemetry_interval must be positive, "
                f"got {self.telemetry_interval}"
            )
        if self.consistency not in _SCHEMES:
            raise ValueError(
                f"unknown consistency scheme {self.consistency!r} "
                f"(choose from {sorted(_SCHEMES)})"
            )
        if self.origin_retries < 0:
            raise ValueError(
                f"origin_retries must be >= 0, got {self.origin_retries}"
            )
        if self.retry_backoff_base <= 0:
            raise ValueError(
                f"retry_backoff_base must be positive, "
                f"got {self.retry_backoff_base}"
            )
        if self.hedge_after is not None and self.hedge_after <= 0:
            raise ValueError(
                f"hedge_after must be positive, got {self.hedge_after}"
            )
        if self.max_inflight is not None and self.max_inflight <= 0:
            raise ValueError(
                f"max_inflight must be positive, got {self.max_inflight}"
            )
        if self.heartbeat_timeout <= 0:
            raise ValueError(
                f"heartbeat_timeout must be positive, "
                f"got {self.heartbeat_timeout}"
            )
        if self.restart_backoff_base <= 0:
            raise ValueError(
                f"restart_backoff_base must be positive, "
                f"got {self.restart_backoff_base}"
            )
        if self.hot_key_policy not in HOT_KEY_POLICIES:
            raise ValueError(
                f"unknown hot_key_policy {self.hot_key_policy!r} "
                f"(choose from {HOT_KEY_POLICIES})"
            )
        if self.hot_key_threshold <= 0:
            raise ValueError(
                f"hot_key_threshold must be positive, "
                f"got {self.hot_key_threshold}"
            )
        if self.hot_key_window <= 0:
            raise ValueError(
                f"hot_key_window must be positive, got {self.hot_key_window}"
            )
        if (
            self.fault_plan is not None
            and self.fault_plan.max_shard() >= self.n_shards
        ):
            raise ValueError(
                f"fault plan targets shard {self.fault_plan.max_shard()}, "
                f"but the server only has {self.n_shards} shard(s)"
            )


class WorkerUnavailable(RuntimeError):
    """The shard worker is drained or down; the op was not admitted."""


class WorkerOverloaded(RuntimeError):
    """The shard's admission bound is full; the op was shed."""


#: Poison pill: the runner dies with an unhandled exception (the
#: chaos harness's shard-kill — what an uncaught bug in the worker
#: loop would do).
_CRASH = object()


@dataclass
class _Wedge:
    """Queue marker that blocks the runner loop (shard-wedge chaos)."""

    duration: float


class _ShardWorker:
    """Admission queue + fan-out executor for one shard.

    Ops are *admitted* in arrival order (one queue per shard) but each
    runs in its own task, so a stalled origin fetch never head-of-line
    blocks the fresh hits queued behind it.  ``drain()`` stops
    admission and waits for everything already admitted to finish.

    Survival extras: admission is bounded by ``max_inflight`` (past
    it, :meth:`submit` raises :class:`WorkerOverloaded` — explicit
    load shedding); the runner stamps a heartbeat each loop turn so
    the supervisor can tell a wedged worker from an idle one; and
    :meth:`abort`/:meth:`restart` implement the supervisor's
    kill-and-rebirth cycle.
    """

    def __init__(self, shard: CacheService, max_inflight: Optional[int] = None):
        self.shard = shard
        self.max_inflight = max_inflight
        self.queue: asyncio.Queue = asyncio.Queue()
        self._pending: Set[asyncio.Task] = set()
        self._runner: Optional[asyncio.Task] = None
        self._stopped = False
        #: Loop-time of the runner's last progress mark.
        self.last_beat = 0.0
        #: Times this worker has been reborn by the supervisor.
        self.restarts = 0

    # -- state probes (the supervisor's view) --------------------------------

    @property
    def draining(self) -> bool:
        return self._stopped

    def alive(self) -> bool:
        return self._runner is not None and not self._runner.done()

    def crashed(self) -> bool:
        """The runner died outside a drain (unhandled exception)."""
        return (
            not self._stopped
            and self._runner is not None
            and self._runner.done()
        )

    def wedged(self, loop_now: float, timeout: float) -> bool:
        """Work is queued but the runner has not beaten for ``timeout``."""
        return (
            not self._stopped
            and self.alive()
            and self.queue.qsize() > 0
            and loop_now - self.last_beat > timeout
        )

    def load(self) -> int:
        """Admitted-but-unfinished ops (queued + in flight)."""
        return self.queue.qsize() + len(self._pending)

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        self.last_beat = asyncio.get_event_loop().time()
        self._runner = asyncio.ensure_future(self._run())

    async def _run(self) -> None:
        loop = asyncio.get_event_loop()
        while True:
            job = await self.queue.get()
            self.last_beat = loop.time()
            if job is None:
                return
            if job is _CRASH:
                raise RuntimeError("injected shard crash")
            if isinstance(job, _Wedge):
                # Block the loop itself: queued ops pile up and the
                # heartbeat goes stale — exactly a wedged worker.
                await asyncio.sleep(job.duration)
                self.last_beat = loop.time()
                continue
            coro, future = job
            task = asyncio.ensure_future(self._execute(coro, future))
            self._pending.add(task)
            task.add_done_callback(self._pending.discard)

    @staticmethod
    async def _execute(coro, future: asyncio.Future) -> None:
        try:
            result = await coro
        except asyncio.CancelledError:
            # The supervisor aborted the worker mid-op: the waiter must
            # not hang — it gets an unavailable verdict (and the server
            # turns that into a replica-failover attempt).
            if not future.done():
                future.set_exception(
                    WorkerUnavailable("shard worker aborted")
                )
            raise
        except Exception as exc:  # noqa: BLE001 - relayed to the waiter
            if not future.cancelled():
                future.set_exception(exc)
        else:
            if not future.cancelled():
                future.set_result(result)

    async def submit(self, coro):
        """Admit one op on this shard and await its result.

        Fails fast instead of enqueueing into a worker that will never
        run the op: a drained or down worker raises
        :class:`WorkerUnavailable`; a full one (``max_inflight``
        admitted-but-unfinished ops) raises :class:`WorkerOverloaded`.
        """
        if self._stopped or not self.alive():
            coro.close()
            raise WorkerUnavailable(
                "shard-drained" if self._stopped else "shard-down"
            )
        if self.max_inflight is not None and self.load() >= self.max_inflight:
            coro.close()
            raise WorkerOverloaded("admission bound full")
        future = asyncio.get_event_loop().create_future()
        # put_nowait: no await between the state checks above and the
        # enqueue, so a job can never land behind the drain sentinel.
        self.queue.put_nowait((coro, future))
        return await future

    async def drain(self) -> None:
        self._stopped = True
        self.queue.put_nowait(None)
        if self._runner is not None:
            try:
                await self._runner
            except Exception:  # noqa: BLE001 - crashed runner: nothing to run
                pass
        # Jobs stuck behind a crash (the runner died before popping
        # them) would hang their waiters forever: fail them instead.
        self._flush_queue()
        if self._pending:
            await asyncio.gather(*self._pending, return_exceptions=True)

    # -- supervisor hooks ----------------------------------------------------

    def inject_crash(self) -> None:
        """Chaos: the runner dies with an unhandled exception."""
        self.queue.put_nowait(_CRASH)

    def inject_wedge(self, duration: float) -> None:
        """Chaos: the runner loop blocks for ``duration`` seconds."""
        self.queue.put_nowait(_Wedge(float(duration)))

    async def abort(self, drop_queue: bool) -> None:
        """Tear the worker down (supervisor restart path).

        ``drop_queue`` is the crash case: queued waiters fail fast
        with :class:`WorkerUnavailable` and in-flight ops are
        cancelled (the shard "process" died mid-work).  A wedge keeps
        both — the cache and the admitted work survive a loop stall.
        """
        runner, self._runner = self._runner, None
        if runner is not None:
            if not runner.done():
                runner.cancel()
            try:
                await runner
            except (asyncio.CancelledError, Exception):  # noqa: BLE001
                pass
        if drop_queue:
            self._flush_queue()
            for task in list(self._pending):
                task.cancel()
            if self._pending:
                await asyncio.gather(*self._pending, return_exceptions=True)

    def restart(self) -> None:
        self.restarts += 1
        self.start()

    def _flush_queue(self) -> None:
        while True:
            try:
                job = self.queue.get_nowait()
            except asyncio.QueueEmpty:
                return
            if job is None or job is _CRASH or isinstance(job, _Wedge):
                continue
            coro, future = job
            coro.close()
            if not future.done():
                future.set_exception(WorkerUnavailable("shard worker stopped"))


class HotKeyTracker:
    """Fixed-window request counter flagging keys over a rate threshold.

    ``observe(key, now)`` returns True when the key has already been
    seen ``threshold`` times inside the current window — the server
    then sheds or coalesces the request per its hot-key policy.  One
    window of hysteresis (a key hot in the previous window stays hot)
    keeps the verdict from flapping at every window boundary.
    """

    def __init__(self, threshold: int, window: float):
        if threshold <= 0:
            raise ValueError(f"threshold must be positive, got {threshold}")
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        self.threshold = int(threshold)
        self.window = float(window)
        self._counts: Dict[int, int] = {}
        self._hot_last_window: Set[int] = set()
        self._window_end = self.window

    def observe(self, key: int, now: float) -> bool:
        if now >= self._window_end:
            self._hot_last_window = {
                k for k, n in self._counts.items() if n >= self.threshold
            }
            self._counts = {}
            self._window_end = now + self.window
        count = self._counts.get(key, 0) + 1
        self._counts[key] = count
        return count >= self.threshold or key in self._hot_last_window


class _ShardTransport:
    """ConsistencyTransport adapter: in-process shard delivery.

    The simulation implements the same port with radio floods; here a
    push is two method calls — home shard first (it owns the TTR fold
    of eq. 2, exactly like the home custodian in the peer protocol),
    then the replica shard — and an invalidation visits every shard.
    """

    def __init__(self, server: "EdgeCacheServer"):
        self._server = server

    def push_update_to_regions(self, updater: int, key: int, category: str) -> None:
        server = self._server
        item = server.database[key]
        home = server.directory.home_region(key)
        replica = server.directory.replica_region(key)
        targets = [home] if replica == home else [home, replica]
        for region_id in targets:
            msg = UpdatePush(
                key=key,
                version=item.version,
                update_time=item.last_update_time,
                updater=updater,
                data_size=item.size_bytes,
                target_region_id=region_id,
            )
            server.shards[region_id].apply_push(item, msg)
        server.stats.count("consistency.pushes", float(len(targets)))

    def flood_invalidation(self, updater: int, key: int, category: str) -> None:
        server = self._server
        item = server.database[key]
        msg = Invalidation(key=key, version=item.version, updater=updater)
        for shard in server.shards.values():
            shard.apply_invalidation(msg)
        server.stats.count("consistency.invalidations")


class EdgeCacheServer:
    """The asyncio edge-cache service (see module docstring).

    Construct with a :class:`ServiceConfig`, then either call
    :meth:`run` (blocking; installs signal handlers; what ``repro
    serve`` does) or drive it from an existing loop::

        server = EdgeCacheServer(cfg)
        await server.start()          # listening; server.port is bound
        ...
        await server.shutdown()       # graceful drain
    """

    def __init__(self, cfg: ServiceConfig):
        self.cfg = cfg
        self.clock = WallClock()
        self.stats = CounterStatSink()
        self.directory = ShardDirectory(cfg.n_shards, salt=cfg.seed)
        rng = np.random.default_rng(cfg.seed)
        self.database = Database(cfg.n_items, rng)
        self.origin = InMemoryOrigin(self.database, latency=cfg.origin_latency)
        self.scheme = build_scheme(cfg.consistency)
        self.scheme.bind(_ShardTransport(self))
        # Custodian-held TTR state starts exactly like the simulation's.
        for item in self.database.items:
            item.ttr = self.scheme.initial_ttr(item)
        # Dedicated seeded streams: [seed, 1] jitters retry/restart
        # backoff, [seed, 2] draws injected origin errors — neither can
        # perturb the database stream (default_rng(seed)) above.
        service_rng = np.random.default_rng([cfg.seed, 1])
        chaos_rng = np.random.default_rng([cfg.seed, 2])
        retry_backoff = (
            BackoffPolicy(
                base=cfg.retry_backoff_base, jitter=0.1, rng=service_rng
            )
            if cfg.origin_retries > 0 else None
        )
        self.resilience = ResilienceManager(
            retries=cfg.origin_retries,
            deadline=cfg.deadline,
            backoff=retry_backoff,
            suspect_after=cfg.suspect_after,
            cooldown=cfg.breaker_cooldown,
            stats=self.stats,
            event_hook=self._resilience_event,
        )
        per_shard_capacity = (
            self.database.total_bytes * cfg.cache_fraction
        )
        self.shards: Dict[int, CacheService] = {
            region_id: CacheService(
                region_id,
                per_shard_capacity,
                clock=self.clock,
                directory=self.directory,
                origin=self.origin,
                scheme=self.scheme,
                resilience=self.resilience,
                stats=self.stats,
                hedge_after=cfg.hedge_after,
            )
            for region_id in self.directory.region_ids()
        }
        self.workers: Dict[int, _ShardWorker] = {
            region_id: _ShardWorker(shard, max_inflight=cfg.max_inflight)
            for region_id, shard in self.shards.items()
        }
        self.supervisor: Optional[ShardSupervisor] = None
        if cfg.supervise:
            self.supervisor = ShardSupervisor(
                workers=self.workers,
                shards=self.shards,
                directory=self.directory,
                clock=self.clock,
                stats=self.stats,
                backoff=BackoffPolicy(
                    base=cfg.restart_backoff_base, jitter=0.1,
                    rng=service_rng,
                ),
                heartbeat_timeout=cfg.heartbeat_timeout,
                warm_rebuild=cfg.warm_rebuild,
                event_hook=self._resilience_event,
            )
        self.injector = ServiceFaultInjector(
            cfg.fault_plan if cfg.fault_plan is not None
            else ServiceFaultPlan(),
            workers=self.workers,
            origin=self.origin,
            clock=self.clock,
            stats=self.stats,
            rng=chaos_rng,
            event_hook=self._resilience_event,
        )
        self._hot_keys: Optional[HotKeyTracker] = (
            HotKeyTracker(cfg.hot_key_threshold, cfg.hot_key_window)
            if cfg.hot_key_policy != "off" else None
        )
        #: Hot-key coalescing: key -> shared future of the lead request.
        self._hot_inflight: Dict[int, asyncio.Future] = {}
        self.port = cfg.port  # rebound to the real port after start()
        self.bus = None
        self._dashboard = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._connections: Set[asyncio.Task] = set()
        self._writers: Set[asyncio.StreamWriter] = set()
        #: Writers currently between request receipt and response flush;
        #: the drain closes only idle (readline-parked) connections and
        #: lets busy ones deliver their response first.
        self._busy: Set[asyncio.StreamWriter] = set()
        self._telemetry_task: Optional[asyncio.Task] = None
        self._duration_task: Optional[asyncio.Task] = None
        self._shutdown = asyncio.Event()
        self._drained = False

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        """Bind, start shard workers and the telemetry sampler."""
        self._build_bus()
        for worker in self.workers.values():
            worker.start()
        if self.supervisor is not None:
            self.supervisor.start()
        self.injector.start()
        self._server = await asyncio.start_server(
            self._handle_connection, self.cfg.host, self.cfg.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        if self.bus is not None:
            self._telemetry_task = asyncio.ensure_future(self._telemetry_loop())
        if self.cfg.duration is not None:
            self._duration_task = asyncio.ensure_future(
                self._auto_shutdown(self.cfg.duration)
            )

    async def serve_forever(self) -> None:
        """Block until :meth:`request_shutdown`, then drain."""
        await self._shutdown.wait()
        await self.shutdown()

    def request_shutdown(self) -> None:
        """Signal-safe shutdown trigger (idempotent)."""
        self._shutdown.set()

    async def shutdown(self) -> None:
        """Graceful drain; see module docstring.  Idempotent."""
        if self._drained:
            return
        self._drained = True
        self._shutdown.set()
        if self._duration_task is not None:
            self._duration_task.cancel()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        # Chaos and supervision stop first: no new faults land and no
        # restart cycle races the drain.
        await self.injector.stop()
        if self.supervisor is not None:
            await self.supervisor.stop()
        # Everything admitted (queued or in flight) finishes first ...
        # (a chaos-stalled origin stays stalled: parked ops resolve
        # through their deadlines, so the drain still terminates).
        await asyncio.gather(*(w.drain() for w in self.workers.values()))
        # ... handlers get a beat to flush their responses ...
        await asyncio.sleep(0)
        # ... then idle connections (parked in readline) are closed;
        # busy ones exit their loop after flushing the response.
        for writer in list(self._writers):
            if writer not in self._busy:
                writer.close()
        if self._connections:
            await asyncio.gather(*self._connections, return_exceptions=True)
        if self._telemetry_task is not None:
            self._telemetry_task.cancel()
            try:
                await self._telemetry_task
            except asyncio.CancelledError:
                pass
        if self.bus is not None:
            self.bus.publish(self.clock.now(), self._telemetry_row())
            if self._dashboard is not None:
                self._dashboard.close()
            self.bus.close()

    def run(self) -> int:
        """Blocking entry point: serve until SIGTERM/SIGINT, exit 0."""
        loop = asyncio.new_event_loop()
        try:
            asyncio.set_event_loop(loop)
            loop.run_until_complete(self.start())
            for signum in (signal.SIGTERM, signal.SIGINT):
                try:
                    loop.add_signal_handler(signum, self.request_shutdown)
                except (NotImplementedError, RuntimeError):  # pragma: no cover
                    pass  # non-Unix loop: Ctrl-C still raises KeyboardInterrupt
            print(
                f"edge-cache: {self.cfg.n_shards} shard(s) on "
                f"{self.cfg.host}:{self.port}, {self.cfg.n_items} items, "
                f"scheme {self.cfg.consistency}",
                file=sys.stderr,
            )
            loop.run_until_complete(self.serve_forever())
        except KeyboardInterrupt:  # pragma: no cover - interactive only
            loop.run_until_complete(self.shutdown())
        finally:
            loop.close()
        snapshot = self.stats.snapshot()
        served = snapshot.get("service.get", 0.0)
        hits = snapshot.get("cache.hits", 0.0)
        print(
            f"edge-cache: drained after {served:.0f} get(s), "
            f"{hits:.0f} local hit(s)",
            file=sys.stderr,
        )
        return 0

    async def _auto_shutdown(self, duration: float) -> None:
        await asyncio.sleep(duration)
        self.request_shutdown()

    # -- request handling ----------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """One connection: pipelined dispatch, in-order responses.

        Requests are dispatched the moment they are read — a client
        that pipelines N requests gets N concurrent ops instead of
        head-of-line blocking behind the first slow one (without
        this, open-loop overload piles up in socket buffers and never
        reaches the shard admission bounds that exist to shed it).
        Responses still go out in request order: a flusher task awaits
        each dispatch future in sequence.
        """
        task = asyncio.current_task()
        self._connections.add(task)
        self._writers.add(writer)
        self.stats.count("service.connections")
        pending: asyncio.Queue = asyncio.Queue()
        flusher = asyncio.ensure_future(self._flush_responses(writer, pending))
        try:
            while not self._shutdown.is_set():
                line = await reader.readline()
                if not line:
                    break
                self._busy.add(writer)
                pending.put_nowait(
                    asyncio.ensure_future(
                        self._process(line, self.clock.now())
                    )
                )
        except (ConnectionResetError, BrokenPipeError):
            pass  # client went away mid-exchange; nothing to flush
        finally:
            pending.put_nowait(None)
            try:
                await flusher
            except (ConnectionResetError, BrokenPipeError):
                pass  # client went away; drop the unflushed tail
            self._busy.discard(writer)
            self._writers.discard(writer)
            self._connections.discard(task)
            writer.close()

    async def _flush_responses(
        self, writer: asyncio.StreamWriter, pending: asyncio.Queue
    ) -> None:
        while True:
            future = await pending.get()
            if future is None:
                return
            response = await future
            writer.write(json.dumps(response).encode() + b"\n")
            await writer.drain()
            if pending.empty():
                self._busy.discard(writer)

    async def _process(self, line: bytes, started: float) -> dict:
        try:
            request = json.loads(line)
            response = await self._dispatch(request)
        except (ValueError, KeyError, TypeError) as exc:
            response = {"ok": False, "error": str(exc)}
        response["latency_ms"] = round(
            (self.clock.now() - started) * 1e3, 3
        )
        return response

    async def _dispatch(self, request: dict) -> dict:
        op = request.get("op")
        self.stats.count("service.requests")
        if op == "get":
            return (await self._get(int(request["key"]))).to_dict()
        if op == "put":
            return (await self._put(int(request["key"]))).to_dict()
        if op == "invalidate":
            key = int(request["key"])
            home = self.directory.home_region(key)
            response = await self._submit(
                home, self._invalidate(key, home), op="invalidate", key=key
            )
            return response.to_dict()
        if op == "stats":
            return self.describe()
        if op == "ping":
            return {"op": "ping", "ok": True, "t": self.clock.now()}
        if op == "chaos":
            return self._chaos(request)
        raise ValueError(f"unknown op {op!r}")

    async def _submit(
        self, shard_id: int, coro, *, op: str, key: int
    ) -> CacheResponse:
        """Admit one op on a shard worker; refusals become responses.

        A full admission bound sheds the op (``overloaded``, served
        class ``shed``); a down or drained worker fails it fast
        (``unavailable``) — in both cases the client gets an explicit
        verdict instead of a hung request.
        """
        try:
            return await self.workers[shard_id].submit(coro)
        except WorkerOverloaded:
            self.stats.count("service.shed")
            self.stats.count("service.shed.queue_full")
            return CacheResponse(
                op, key, "overloaded", shard_id,
                served_class="shed", extra={"reason": "queue-full"},
            )
        except WorkerUnavailable as exc:
            self.stats.count("service.worker_unavailable")
            return CacheResponse(
                op, key, "unavailable", shard_id,
                served_class="failed", extra={"reason": str(exc)},
            )

    async def _get(self, key: int) -> CacheResponse:
        if self._hot_keys is not None and self._hot_keys.observe(
            key, self.clock.now()
        ):
            if self.cfg.hot_key_policy == "shed":
                self.stats.count("service.shed")
                self.stats.count("service.shed.hot_key")
                return CacheResponse(
                    "get", key, "overloaded",
                    self.directory.home_region(key),
                    served_class="shed", extra={"reason": "hot-key"},
                )
            # Coalesce: followers of a hot key share the lead
            # request's response instead of each crossing the shard.
            lead = self._hot_inflight.get(key)
            if lead is not None:
                self.stats.count("service.hot_key_coalesced")
                return await asyncio.shield(lead)
            future = asyncio.get_event_loop().create_future()
            future.add_done_callback(
                lambda f: f.exception() if not f.cancelled() else None
            )
            self._hot_inflight[key] = future
            try:
                response = await self._routed_get(key)
                future.set_result(response)
                return response
            except BaseException as exc:
                future.set_exception(exc)
                raise
            finally:
                self._hot_inflight.pop(key, None)
                if not future.done():  # pragma: no cover - defensive
                    future.cancel()
        return await self._routed_get(key)

    async def _routed_get(self, key: int) -> CacheResponse:
        home = self.directory.home_region(key)
        response = await self._submit(
            home, self.shards[home].get(key), op="get", key=key
        )
        # A shed op must stay shed: failing it over to the replica
        # would turn load shedding into load amplification.
        if not response.ok and response.served_class != "shed":
            replica = self.directory.replica_region(key)
            if replica != home:
                # §2.4 failover: one shot at the replica custodian,
                # which may hold a pushed copy even when the home path
                # is dark.  Steered: no breaker re-consultation there.
                fallback = await self._submit(
                    replica, self.shards[replica].get(key, steered=True),
                    op="get", key=key,
                )
                if fallback.ok:
                    fallback.extra["failover"] = "replica"
                    self.stats.count("service.replica_failover")
                    return fallback
        return response

    async def _put(self, key: int) -> CacheResponse:
        home = self.directory.home_region(key)
        return await self._submit(
            home, self._commit(key, home), op="put", key=key
        )

    async def _commit(self, key: int, home: int) -> CacheResponse:
        return self.shards[home].put(key, updater=-1)

    async def _invalidate(self, key: int, home: int) -> CacheResponse:
        response = self.shards[home].invalidate(key)
        # A client purge floods every shard unconditionally (it must
        # work under every scheme, unlike a Plain-Push notice).
        for region_id, shard in self.shards.items():
            if region_id != home and shard.purge(key):
                self.stats.count("service.purge_flood")
        return response

    def _chaos(self, request: dict) -> dict:
        """The chaos wire op: stall/resume aliases + arbitrary specs.

        ``stall``/``resume`` map onto immediate origin fault specs;
        ``inject`` parses any compact fault expression (``at`` is
        relative to now).  Unknown actions are rejected with a
        structured error echoing the supported grammar.
        """
        action = request.get("action")
        if action in ("stall", "resume"):
            self.injector.apply(ServiceFaultSpec(kind=f"origin-{action}"))
            return {
                "op": "chaos", "ok": True, "action": action,
                "stalled": self.origin.stalled,
            }
        if action == "inject":
            try:
                spec = ServiceFaultPlan.parse_spec(
                    str(request.get("spec", ""))
                )
            except ValueError as exc:
                return {
                    "op": "chaos", "ok": False, "error": str(exc),
                    "grammar": list(CHAOS_GRAMMAR),
                }
            self.injector.inject(spec)
            return {
                "op": "chaos", "ok": True, "action": "inject",
                "spec": spec.to_dict(),
            }
        return {
            "op": "chaos", "ok": False,
            "error": f"unknown chaos action {action!r}",
            "actions": ["stall", "resume", "inject"],
            "grammar": list(CHAOS_GRAMMAR),
        }

    # -- telemetry -----------------------------------------------------------

    def _build_bus(self) -> None:
        cfg = self.cfg
        if not (cfg.live_export or cfg.metrics_snapshot or cfg.watch):
            return
        from repro.obs import (
            Dashboard,
            JsonlLiveSink,
            MetricsSnapshotWriter,
            TelemetryBus,
        )

        self.bus = TelemetryBus()
        if cfg.live_export is not None:
            self.bus.attach_sink(JsonlLiveSink(cfg.live_export))
        if cfg.metrics_snapshot is not None:
            self.bus.attach_sink(MetricsSnapshotWriter(cfg.metrics_snapshot))
        if cfg.watch:
            self._dashboard = Dashboard(
                self.bus,
                duration=cfg.duration,
                interval=cfg.telemetry_interval,
                mode=cfg.dashboard_mode,
                title="repro edge-cache",
            )

    def _resilience_event(self, kind: str, **fields) -> None:
        if self.bus is not None:
            self.bus.publish_event(self.clock.now(), kind, fields)

    async def _telemetry_loop(self) -> None:
        while True:
            await asyncio.sleep(self.cfg.telemetry_interval)
            self.bus.publish(self.clock.now(), self._telemetry_row())

    def _telemetry_row(self) -> Dict[str, float]:
        """One sampled row, same series names the simulation publishes."""
        values = dict(self.stats.snapshot())
        gets = values.get("service.get", 0.0)
        hits = values.get("cache.hits", 0.0)
        degraded = values.get("cache.degraded_serves", 0.0)
        bytes_hit = values.get("cache.bytes_hit", 0.0)
        bytes_origin = values.get("cache.bytes_from_origin", 0.0)
        values["request.hit_ratio"] = (
            (hits + degraded) / gets if gets else 0.0
        )
        values["request.byte_hit_ratio"] = (
            bytes_hit / (bytes_hit + bytes_origin)
            if (bytes_hit + bytes_origin) else 0.0
        )
        values["service.open_connections"] = float(len(self._connections))
        sheds = values.get("service.shed", 0.0)
        values["service.shed_ratio"] = (
            sheds / (gets + sheds) if (gets + sheds) else 0.0
        )
        down = self.supervisor.down if self.supervisor is not None else set()
        shards_up = 0.0
        for shard_id, worker in self.workers.items():
            up = 1.0 if worker.alive() and shard_id not in down else 0.0
            shards_up += up
            values[f"service.shard{shard_id}.up"] = up
            values[f"service.shard{shard_id}.inflight"] = float(worker.load())
        values["service.shards_up"] = shards_up
        for shard in self.shards.values():
            values.update(shard.telemetry())
        values.update(self.resilience.telemetry())
        return values

    def describe(self) -> dict:
        """The ``stats`` op: a full JSON-friendly state snapshot."""
        return {
            "op": "stats",
            "ok": True,
            "t": self.clock.now(),
            "shards": self.cfg.n_shards,
            "items": self.cfg.n_items,
            "consistency": self.cfg.consistency,
            "origin": {
                "fetches": self.origin.fetches,
                "validations": self.origin.validations,
                "puts": self.origin.puts,
                "errors": self.origin.errors,
                "stalled": self.origin.stalled,
                "error_rate": self.origin.error_rate,
                "extra_latency": self.origin.extra_latency,
            },
            "supervision": {
                "enabled": self.supervisor is not None,
                "down": sorted(
                    self.supervisor.down
                ) if self.supervisor is not None else [],
                "restarts": {
                    str(shard_id): worker.restarts
                    for shard_id, worker in self.workers.items()
                    if worker.restarts
                },
            },
            "chaos_events": self.injector.applied,
            "telemetry": self._telemetry_row(),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"EdgeCacheServer(shards={len(self.shards)}, "
            f"port={self.port}, drained={self._drained})"
        )
