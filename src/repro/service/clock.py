"""Wall-clock adapters for the :class:`repro.ports.Clock` port.

The simulator's virtual clock advances only when events fire; the
service's clock is the machine's.  Both satisfy the same ``now()``
protocol, which is the whole point: :class:`~repro.core.cache.PeerCache`
priorities, TTR freshness windows, breaker cool-downs and deadline
budgets all read time through the port and cannot tell which runtime
they are in.
"""

from __future__ import annotations

import time

__all__ = ["ManualClock", "WallClock"]


class WallClock:
    """Monotonic wall clock, zeroed at construction.

    Starting from 0 keeps service timestamps in the same shape as
    simulation timestamps (seconds since run start), so telemetry rows
    published by the service replay through ``repro watch`` exactly
    like simulation rows.
    """

    def __init__(self) -> None:
        self._epoch = time.monotonic()

    def now(self) -> float:
        return time.monotonic() - self._epoch

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"WallClock(t={self.now():.3f})"


class ManualClock:
    """A hand-advanced clock for deterministic service tests."""

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    def now(self) -> float:
        return self._now

    def advance(self, dt: float) -> float:
        if dt < 0:
            raise ValueError(f"cannot move a clock backwards ({dt})")
        self._now += dt
        return self._now

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ManualClock(t={self._now:.3f})"
