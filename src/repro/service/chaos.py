"""ServiceFaultInjector: executes a ServiceFaultPlan on wall-clock time.

The simulator's fault layer schedules radio faults on virtual time;
this is the service-side twin.  An injector owns one scheduler task
that walks the plan's :meth:`~repro.service.faultplan.ServiceFaultPlan.timeline`
and applies each spec when the server's :class:`WallClock` reaches its
``at``:

* ``shard-kill`` — poison the shard worker's runner task so it dies
  with an unhandled exception (the supervisor sees a crash; the
  shard's cache is lost);
* ``shard-wedge`` — block the runner loop for ``duration`` seconds
  (heartbeat overrun; the cache survives);
* ``origin-stall`` / ``origin-resume`` — the origin's hang switch,
  with an optional auto-resume after ``duration``;
* ``origin-error-rate`` — browned-out origin failing each call with
  probability ``p`` (draws come from the injector's dedicated seeded
  RNG stream, so a chaos run replays from the seed), auto-reverting
  after ``duration`` when given;
* ``latency-spike`` — extra per-call origin latency, auto-reverting
  after ``duration`` when given.

The injector is also the runtime back end of the ``chaos`` wire op:
``stall``/``resume`` are aliases for immediate origin specs, and
``inject`` schedules any parsed spec ``at`` seconds from *now*.
"""

from __future__ import annotations

import asyncio
import sys
from typing import Optional, Set

from repro.service.faultplan import (
    ServiceFaultPlan,
    ServiceFaultSpec,
)

__all__ = ["ServiceFaultInjector"]


class ServiceFaultInjector:
    """Timed executor for service fault specs.

    Parameters
    ----------
    plan:
        The scripted schedule; may be empty (runtime ``inject`` still
        works).  Shard targets must exist in ``workers``.
    workers / origin / clock / stats:
        The server's worker map, origin adapter, wall clock, and stat
        sink.
    rng:
        ``numpy`` generator backing origin error-rate draws (the
        server's dedicated chaos stream).
    event_hook:
        Optional ``callable(kind, **fields)``; every applied spec
        emits a ``chaos`` event.
    """

    def __init__(
        self,
        plan: ServiceFaultPlan,
        *,
        workers,
        origin,
        clock,
        stats,
        rng=None,
        event_hook=None,
    ):
        top = plan.max_shard()
        if top >= 0 and top not in workers:
            raise ValueError(
                f"fault plan targets shard {top}, but the server only "
                f"has shards {sorted(workers)}"
            )
        self.plan = plan
        self.workers = workers
        self.origin = origin
        self.clock = clock
        self.stats = stats
        self.rng = rng
        self._event = event_hook
        self.applied = 0
        self._scheduler: Optional[asyncio.Task] = None
        self._timers: Set[asyncio.Task] = set()

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        if self.plan:
            self._scheduler = asyncio.ensure_future(self._run())

    async def stop(self) -> None:
        """Cancel the scheduler and any pending auto-revert timers."""
        tasks = list(self._timers)
        if self._scheduler is not None:
            tasks.append(self._scheduler)
        for task in tasks:
            task.cancel()
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)
        self._timers.clear()
        self._scheduler = None

    async def _run(self) -> None:
        for spec in self.plan.timeline():
            delay = spec.at - self.clock.now()
            if delay > 0.0:
                await asyncio.sleep(delay)
            try:
                self.apply(spec)
            except Exception as exc:  # noqa: BLE001 - one bad spec must
                # not cancel the rest of the schedule
                print(
                    f"service chaos: applying {spec.kind} failed: {exc!r}",
                    file=sys.stderr,
                )

    # -- execution -----------------------------------------------------------

    def inject(self, spec: ServiceFaultSpec) -> None:
        """Runtime injection: apply ``spec.at`` seconds from now."""
        if spec.at <= 0.0:
            self.apply(spec)
        else:
            self._after(spec.at, lambda: self.apply(spec))

    def apply(self, spec: ServiceFaultSpec) -> None:
        """Apply one spec immediately (auto-revert timers as needed)."""
        if spec.kind in ("shard-kill", "shard-wedge"):
            worker = self.workers[spec.shard]
            if spec.kind == "shard-kill":
                worker.inject_crash()
            else:
                worker.inject_wedge(spec.duration)
        elif spec.kind == "origin-stall":
            self.origin.stall()
            if spec.duration is not None:
                self._after(spec.duration, self.origin.resume)
        elif spec.kind == "origin-resume":
            self.origin.resume()
        elif spec.kind == "origin-error-rate":
            self.origin.set_error_rate(spec.probability, rng=self.rng)
            if spec.duration is not None:
                self._after(
                    spec.duration, lambda: self.origin.set_error_rate(0.0)
                )
        elif spec.kind == "latency-spike":
            self.origin.set_extra_latency(spec.extra)
            if spec.duration is not None:
                self._after(
                    spec.duration, lambda: self.origin.set_extra_latency(0.0)
                )
        else:  # pragma: no cover - ServiceFaultSpec validates kinds
            raise ValueError(f"unknown service fault kind {spec.kind!r}")
        self.applied += 1
        self.stats.count("service.chaos_events")
        if self._event is not None:
            fields = {
                "fault" if k == "kind" else k: v
                for k, v in spec.to_dict().items()
            }
            self._event("chaos", **fields)

    def _after(self, delay: float, fn) -> None:
        async def _timer() -> None:
            await asyncio.sleep(delay)
            fn()

        task = asyncio.ensure_future(_timer())
        self._timers.add(task)
        task.add_done_callback(self._timers.discard)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ServiceFaultInjector(specs={len(self.plan)}, "
            f"applied={self.applied})"
        )
