"""Origin adapter: the authoritative tier behind the edge caches.

In the paper the authoritative copy of a key lives with its home-region
custodians; in an edge-cache deployment it lives in an origin store the
edge tier protects.  :class:`InMemoryOrigin` plays that role: it owns
the :class:`~repro.workload.Database` (authoritative sizes, versions,
and per-item TTR state for eq. 2), simulates origin round-trip latency,
and exposes the failure controls the resilience tests and the chaos
side of the load generator need — a *stall* switch under which fetches
hang until the caller's deadline trips, exactly how a dead upstream
looks from an edge box.
"""

from __future__ import annotations

import asyncio
from typing import Optional

from repro.workload.database import Database, DataItem

__all__ = ["InMemoryOrigin"]


class InMemoryOrigin:
    """Async facade over the authoritative :class:`Database`.

    Parameters
    ----------
    database:
        Ground truth: sizes, versions, TTR state.
    latency:
        Simulated one-way-trip seconds added to every fetch/validate
        (0 for unit tests).
    """

    def __init__(self, database: Database, latency: float = 0.0):
        if latency < 0:
            raise ValueError(f"origin latency must be nonnegative, got {latency}")
        self.db = database
        self.latency = float(latency)
        self.fetches = 0
        self.validations = 0
        self.puts = 0
        #: While True, fetch/validate block forever (callers' deadlines
        #: and breakers must cope) — the "origin is down" chaos switch.
        self._stalled = False
        self._stall_released: Optional[asyncio.Event] = None

    # -- failure injection ---------------------------------------------------

    @property
    def stalled(self) -> bool:
        return self._stalled

    def stall(self) -> None:
        """Stop answering: in-flight and new calls hang until resume()."""
        if not self._stalled:
            self._stalled = True
            self._stall_released = asyncio.Event()

    def resume(self) -> None:
        """Answer again; hung calls proceed after their latency."""
        if self._stalled:
            self._stalled = False
            self._stall_released.set()
            self._stall_released = None

    async def _maybe_stall(self) -> None:
        while self._stalled:
            await self._stall_released.wait()

    # -- reads ---------------------------------------------------------------

    async def fetch(self, key: int) -> DataItem:
        """Authoritative item for ``key`` (full fetch: data + metadata)."""
        await self._maybe_stall()
        if self.latency > 0.0:
            await asyncio.sleep(self.latency)
        self.fetches += 1
        return self.db[key]

    async def validate(self, key: int) -> DataItem:
        """Version check (the TTR-expired poll); metadata-only weight."""
        await self._maybe_stall()
        if self.latency > 0.0:
            await asyncio.sleep(self.latency)
        self.validations += 1
        return self.db[key]

    # -- writes (synchronous: the origin is in-process ground truth) ---------

    def commit(self, key: int, now: float) -> DataItem:
        """Apply an update at the authoritative copy; returns the item.

        Version bump and update-interval bookkeeping follow
        :meth:`DataItem.bump_version`; the caller's consistency scheme
        then folds the new interval into the TTR (eq. 2).
        """
        item = self.db[key]
        item.bump_version(now)
        self.puts += 1
        return item

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"InMemoryOrigin(items={len(self.db)}, latency={self.latency}, "
            f"fetches={self.fetches}, stalled={self._stalled})"
        )
