"""Origin adapter: the authoritative tier behind the edge caches.

In the paper the authoritative copy of a key lives with its home-region
custodians; in an edge-cache deployment it lives in an origin store the
edge tier protects.  :class:`InMemoryOrigin` plays that role: it owns
the :class:`~repro.workload.Database` (authoritative sizes, versions,
and per-item TTR state for eq. 2), simulates origin round-trip latency,
and exposes the failure controls the resilience tests and the
service-chaos harness need:

* a **stall** switch under which fetches hang until the caller's
  deadline trips, exactly how a dead upstream looks from an edge box;
* a seeded **error rate** — each fetch/validate fails with
  :class:`OriginError` with probability ``p`` (a browned-out upstream
  shedding or 5xx-ing some of its load);
* an **extra-latency** dial layered on the base round trip (a latency
  spike that strains deadline budgets without tripping them outright).

All three are what :class:`~repro.service.chaos.ServiceFaultInjector`
drives from a scripted :class:`~repro.service.faultplan.ServiceFaultPlan`.
"""

from __future__ import annotations

import asyncio
from typing import Optional

from repro.workload.database import Database, DataItem

__all__ = ["InMemoryOrigin", "OriginError"]


class OriginError(RuntimeError):
    """The origin answered with a failure (injected brownout error)."""


class InMemoryOrigin:
    """Async facade over the authoritative :class:`Database`.

    Parameters
    ----------
    database:
        Ground truth: sizes, versions, TTR state.
    latency:
        Simulated one-way-trip seconds added to every fetch/validate
        (0 for unit tests).
    """

    def __init__(self, database: Database, latency: float = 0.0):
        if latency < 0:
            raise ValueError(f"origin latency must be nonnegative, got {latency}")
        self.db = database
        self.latency = float(latency)
        self.fetches = 0
        self.validations = 0
        self.puts = 0
        self.errors = 0
        #: While True, fetch/validate block forever (callers' deadlines
        #: and breakers must cope) — the "origin is down" chaos switch.
        self._stalled = False
        self._stall_released: Optional[asyncio.Event] = None
        #: Brownout dials (see :meth:`set_error_rate` / :meth:`set_extra_latency`).
        self.error_rate = 0.0
        self.extra_latency = 0.0
        self._error_rng = None

    # -- failure injection ---------------------------------------------------

    @property
    def stalled(self) -> bool:
        return self._stalled

    def set_error_rate(self, probability: float, rng=None) -> None:
        """Fail each fetch/validate with ``probability`` (0 disables).

        ``rng`` (a ``numpy`` generator) supplies the draws; the server
        passes its dedicated resilience stream so injected brownouts
        replay from the seed.  A previously installed rng is kept when
        the caller omits one (the auto-revert path).
        """
        if not 0.0 <= probability <= 1.0:
            raise ValueError(
                f"error rate must be in [0, 1], got {probability}"
            )
        if probability > 0.0 and rng is None and self._error_rng is None:
            raise ValueError("a nonzero error rate needs an rng stream")
        self.error_rate = float(probability)
        if rng is not None:
            self._error_rng = rng

    def set_extra_latency(self, seconds: float) -> None:
        """Add ``seconds`` to every origin round trip (0 reverts)."""
        if seconds < 0.0:
            raise ValueError(f"extra latency must be >= 0, got {seconds}")
        self.extra_latency = float(seconds)

    def stall(self) -> None:
        """Stop answering: in-flight and new calls hang until resume()."""
        if not self._stalled:
            self._stalled = True
            self._stall_released = asyncio.Event()

    def resume(self) -> None:
        """Answer again; hung calls proceed after their latency."""
        if self._stalled:
            self._stalled = False
            self._stall_released.set()
            self._stall_released = None

    async def _maybe_stall(self) -> None:
        while self._stalled:
            await self._stall_released.wait()

    async def _round_trip(self) -> None:
        """Stall gate, then the (possibly spiked) round-trip latency,
        then the brownout error draw — a browned-out upstream answers
        slowly *and then* fails."""
        await self._maybe_stall()
        delay = self.latency + self.extra_latency
        if delay > 0.0:
            await asyncio.sleep(delay)
        if self.error_rate > 0.0 and (
            float(self._error_rng.random()) < self.error_rate
        ):
            self.errors += 1
            raise OriginError(
                f"origin brownout (error rate {self.error_rate:g})"
            )

    # -- reads ---------------------------------------------------------------

    async def fetch(self, key: int) -> DataItem:
        """Authoritative item for ``key`` (full fetch: data + metadata)."""
        await self._round_trip()
        self.fetches += 1
        return self.db[key]

    async def validate(self, key: int) -> DataItem:
        """Version check (the TTR-expired poll); metadata-only weight."""
        await self._round_trip()
        self.validations += 1
        return self.db[key]

    # -- writes (synchronous: the origin is in-process ground truth) ---------

    def commit(self, key: int, now: float) -> DataItem:
        """Apply an update at the authoritative copy; returns the item.

        Version bump and update-interval bookkeeping follow
        :meth:`DataItem.bump_version`; the caller's consistency scheme
        then folds the new interval into the TTR (eq. 2).
        """
        item = self.db[key]
        item.bump_version(now)
        self.puts += 1
        return item

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"InMemoryOrigin(items={len(self.db)}, latency={self.latency}, "
            f"fetches={self.fetches}, stalled={self._stalled})"
        )
