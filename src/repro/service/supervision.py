"""Shard supervision: crash/wedge detection, backoff restarts, warm rebuild.

A shard worker can die two ways: its runner task exits with an
unhandled exception (**crash** — the shard "process" is gone and takes
its cache with it) or the runner stops making progress while work is
queued (**wedge** — a heartbeat overrun; the cache survives but nothing
drains).  Without supervision either one takes the region down for the
life of the server, which is exactly the churn the cooperative-caching
literature says region schemes must survive.

:class:`ShardSupervisor` watches every :class:`_ShardWorker` on a short
check interval and, on failure:

1. marks the shard **down** (``resilience.shard_down`` counter, the
   per-shard up gauge drops, a ``shard_down`` bus event fires);
2. waits out an exponential-backoff delay via the existing
   :class:`~repro.resilience.backoff.BackoffPolicy` (attempt counts
   reset once a shard has stayed healthy for ``healthy_after``
   seconds, so an old flap does not tax a fresh failure);
3. aborts the dead worker — a crashed worker's queued ops fail fast
   with ``unavailable`` (replica failover is the availability story
   while the shard is dark), a wedged worker keeps its queue;
4. on a crash, resets the shard core (cache, popularity counts,
   in-flight fetches: crash semantics) and **warm-rebuilds** it from
   the *other* shards' caches: every copy whose home region is the
   reborn shard is re-admitted via
   :meth:`~repro.service.core.CacheService.warm_admit` — replica
   pushes (§2.4) are what make this warm set non-empty, and the very
   failovers served while the shard was down make it *hot*;
5. restarts the worker and readmits traffic
   (``resilience.shard_restarts``, ``shard_restarted`` event).

The supervisor never acts on a draining worker: shutdown wins.
"""

from __future__ import annotations

import asyncio
import sys
from typing import Dict, Optional, Set

from repro.resilience.backoff import BackoffPolicy

__all__ = ["ShardSupervisor"]


class ShardSupervisor:
    """Watchdog + restart loop over a server's shard workers.

    Parameters
    ----------
    workers / shards / directory / clock / stats:
        The server's live collaborators (worker map, shard cores,
        key-placement oracle, wall clock, stat sink).
    backoff:
        Restart spacing; attempt ``n`` of a flapping shard waits
        ``backoff.delay(n)`` before the restart.
    heartbeat_timeout:
        Seconds a worker may sit on queued work without a beat before
        it is declared wedged.
    check_interval:
        Watch-loop period; defaults to a quarter heartbeat so a wedge
        is caught within ~1.25 timeouts.
    warm_rebuild:
        Rebuild a crashed shard's cache from replica-held copies
        before readmitting traffic (on by default).
    healthy_after:
        Seconds of uninterrupted uptime after which a shard's restart
        attempt counter resets (default: 10 heartbeat timeouts).
    event_hook:
        Optional ``callable(kind, **fields)`` for ``shard_down`` /
        ``shard_restarted`` bus events.
    """

    def __init__(
        self,
        *,
        workers: Dict[int, "object"],
        shards: Dict[int, "object"],
        directory,
        clock,
        stats,
        backoff: BackoffPolicy,
        heartbeat_timeout: float = 1.0,
        check_interval: Optional[float] = None,
        warm_rebuild: bool = True,
        healthy_after: Optional[float] = None,
        event_hook=None,
    ):
        if heartbeat_timeout <= 0.0:
            raise ValueError(
                f"heartbeat_timeout must be positive, got {heartbeat_timeout}"
            )
        self.workers = workers
        self.shards = shards
        self.directory = directory
        self.clock = clock
        self.stats = stats
        self.backoff = backoff
        self.heartbeat_timeout = float(heartbeat_timeout)
        self.check_interval = (
            float(check_interval) if check_interval is not None
            else self.heartbeat_timeout / 4.0
        )
        self.warm_rebuild = warm_rebuild
        self.healthy_after = (
            float(healthy_after) if healthy_after is not None
            else 10.0 * self.heartbeat_timeout
        )
        self._event = event_hook
        #: Shards currently out of service (gauges read this).
        self.down: Set[int] = set()
        #: Total restarts performed (harness gates read this).
        self.restarts = 0
        self._attempts: Dict[int, int] = {}
        self._last_fail: Dict[int, float] = {}
        self._restarting: Dict[int, asyncio.Task] = {}
        self._watch_task: Optional[asyncio.Task] = None

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        self._watch_task = asyncio.ensure_future(self._watch())

    async def stop(self) -> None:
        """Cancel the watchdog and any in-progress restarts."""
        tasks = list(self._restarting.values())
        if self._watch_task is not None:
            tasks.append(self._watch_task)
        for task in tasks:
            task.cancel()
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)
        self._restarting.clear()
        self._watch_task = None

    # -- detection -----------------------------------------------------------

    async def _watch(self) -> None:
        loop = asyncio.get_event_loop()
        while True:
            await asyncio.sleep(self.check_interval)
            now = loop.time()
            for shard_id, worker in self.workers.items():
                if worker.draining or shard_id in self._restarting:
                    continue
                crashed = worker.crashed()
                wedged = not crashed and worker.wedged(
                    now, self.heartbeat_timeout
                )
                if crashed or wedged:
                    self._restarting[shard_id] = asyncio.ensure_future(
                        self._restart(shard_id, worker, crashed, now)
                    )

    # -- restart flow --------------------------------------------------------

    async def _restart(
        self, shard_id: int, worker, crashed: bool, loop_now: float
    ) -> None:
        kind = "crash" if crashed else "wedge"
        self.down.add(shard_id)
        self.stats.count("resilience.shard_down")
        if self._event is not None:
            self._event("shard_down", shard=shard_id, cause=kind)
        # A long-healthy shard gets a fresh backoff ladder.
        if (
            loop_now - self._last_fail.get(shard_id, float("-inf"))
            > self.healthy_after
        ):
            self._attempts[shard_id] = 0
        self._last_fail[shard_id] = loop_now
        attempt = self._attempts[shard_id] = (
            self._attempts.get(shard_id, 0) + 1
        )
        try:
            await asyncio.sleep(self.backoff.delay(attempt))
            # Shutdown may have started during the backoff wait.
            if worker.draining:
                return
            await worker.abort(drop_queue=crashed)
            warmed = 0
            if crashed:
                self.shards[shard_id].reset()
                if self.warm_rebuild:
                    warmed = self._rebuild(shard_id)
                    if warmed:
                        self.stats.count(
                            "resilience.shard_warm_keys", float(warmed)
                        )
            worker.restart()
            self.restarts += 1
            self.stats.count("resilience.shard_restarts")
            if self._event is not None:
                self._event(
                    "shard_restarted",
                    shard=shard_id, cause=kind,
                    attempt=attempt, warm_keys=warmed,
                )
            self.down.discard(shard_id)
        except asyncio.CancelledError:
            raise
        except Exception as exc:  # noqa: BLE001 - watchdog must not die silently
            print(
                f"shard supervisor: restart of shard {shard_id} failed: "
                f"{exc!r}",
                file=sys.stderr,
            )
        finally:
            self._restarting.pop(shard_id, None)

    def _rebuild(self, shard_id: int) -> int:
        """Re-admit every copy homed at ``shard_id`` held elsewhere."""
        target = self.shards[shard_id]
        now = self.clock.now()
        warmed = 0
        for other_id, other in self.shards.items():
            if other_id == shard_id:
                continue
            for key, copy in list(other.cache.entries.items()):
                if (
                    self.directory.home_region(key) == shard_id
                    and target.warm_admit(key, copy, now)
                ):
                    warmed += 1
        return warmed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ShardSupervisor(shards={len(self.workers)}, "
            f"down={sorted(self.down)}, restarts={self.restarts})"
        )
