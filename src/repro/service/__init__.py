"""An asyncio edge-cache service built on the simulation's cache core.

The policy layer — GD-LD admission/replacement, TTR consistency,
breakers and deadlines — is byte-for-byte the code the discrete-event
simulation runs (:mod:`repro.core`, :mod:`repro.resilience`), reached
through the ports of :mod:`repro.ports`.  This package supplies the
*service* adapter set and the runtime around it:

* :mod:`repro.service.clock` — wall-clock / manual ``Clock`` adapters;
* :mod:`repro.service.routing` — geographic-hash shard routing
  (``PeerDirectory`` adapter);
* :mod:`repro.service.origin` — the authoritative tier, with a stall
  switch for chaos testing;
* :mod:`repro.service.core` — :class:`CacheService`, one region shard;
* :mod:`repro.service.server` — :class:`EdgeCacheServer`, the JSON-
  lines TCP runtime (``repro serve``);
* :mod:`repro.service.loadgen` — the closed-loop Zipf load generator
  (``repro loadgen``).

See ``docs/SERVICE.md`` for the tour.
"""

from repro.service.clock import ManualClock, WallClock
from repro.service.core import CacheResponse, CacheService, DeadlineExceeded
from repro.service.loadgen import LoadGenConfig, LoadSummary, run_loadgen
from repro.service.origin import InMemoryOrigin
from repro.service.routing import ShardDirectory
from repro.service.server import EdgeCacheServer, ServiceConfig, build_scheme

__all__ = [
    "CacheResponse",
    "CacheService",
    "DeadlineExceeded",
    "EdgeCacheServer",
    "InMemoryOrigin",
    "LoadGenConfig",
    "LoadSummary",
    "ManualClock",
    "ServiceConfig",
    "ShardDirectory",
    "WallClock",
    "build_scheme",
    "run_loadgen",
]
