"""An asyncio edge-cache service built on the simulation's cache core.

The policy layer — GD-LD admission/replacement, TTR consistency,
breakers and deadlines — is byte-for-byte the code the discrete-event
simulation runs (:mod:`repro.core`, :mod:`repro.resilience`), reached
through the ports of :mod:`repro.ports`.  This package supplies the
*service* adapter set and the runtime around it:

* :mod:`repro.service.clock` — wall-clock / manual ``Clock`` adapters;
* :mod:`repro.service.routing` — geographic-hash shard routing
  (``PeerDirectory`` adapter);
* :mod:`repro.service.origin` — the authoritative tier, with stall /
  error-rate / latency-spike brownout controls for chaos testing;
* :mod:`repro.service.core` — :class:`CacheService`, one region shard;
* :mod:`repro.service.server` — :class:`EdgeCacheServer`, the JSON-
  lines TCP runtime (``repro serve``);
* :mod:`repro.service.supervision` — :class:`ShardSupervisor`, the
  crash/wedge watchdog with backoff restarts and warm rebuild;
* :mod:`repro.service.faultplan` / :mod:`repro.service.chaos` —
  scripted :class:`ServiceFaultPlan` schedules and the injector that
  executes them on wall-clock time;
* :mod:`repro.service.loadgen` — the Zipf load generator, closed-loop
  or open-loop fixed-rate (``repro loadgen``).

See ``docs/SERVICE.md`` for the tour.
"""

from repro.service.chaos import ServiceFaultInjector
from repro.service.clock import ManualClock, WallClock
from repro.service.core import CacheResponse, CacheService, DeadlineExceeded
from repro.service.faultplan import (
    CHAOS_GRAMMAR,
    ServiceFaultPlan,
    ServiceFaultSpec,
)
from repro.service.loadgen import LoadGenConfig, LoadSummary, run_loadgen
from repro.service.origin import InMemoryOrigin, OriginError
from repro.service.routing import ShardDirectory
from repro.service.server import (
    EdgeCacheServer,
    ServiceConfig,
    WorkerOverloaded,
    WorkerUnavailable,
    build_scheme,
)
from repro.service.supervision import ShardSupervisor

__all__ = [
    "CHAOS_GRAMMAR",
    "CacheResponse",
    "CacheService",
    "DeadlineExceeded",
    "EdgeCacheServer",
    "InMemoryOrigin",
    "LoadGenConfig",
    "LoadSummary",
    "ManualClock",
    "OriginError",
    "ServiceConfig",
    "ServiceFaultInjector",
    "ServiceFaultPlan",
    "ServiceFaultSpec",
    "ShardDirectory",
    "ShardSupervisor",
    "WallClock",
    "WorkerOverloaded",
    "WorkerUnavailable",
    "build_scheme",
    "run_loadgen",
]
