"""Shard routing: the paper's geographic hash as a service key-router.

The simulation maps keys to *home regions* with
:class:`~repro.core.geohash.GeographicHash` over a
:class:`~repro.core.regions.RegionTable` grid (§2.2).  The service
reuses the identical mapping — the plane is notional (no radios, no
mobility), but the hash gives a deterministic, uniform, *locality
aware* partition of the keyspace over N shards, and keeps the GD-LD
policy's region-distance term meaningful: a key hashed far from its
serving shard's center carries a higher re-fetch cost, exactly the
paper's reg_dst heuristic.

:class:`ShardDirectory` implements :class:`repro.ports.PeerDirectory`.
"""

from __future__ import annotations

import math
from typing import Dict, List, Tuple

from repro.core.geohash import GeographicHash
from repro.core.regions import RegionTable

__all__ = ["ShardDirectory"]

#: Nominal plane side used for the hash; the value is arbitrary (any
#: agreed square works — only *relative* distances matter to GD-LD)
#: and matches the paper's 1200 m evaluation plane for familiarity.
PLANE_SIDE = 1200.0


class ShardDirectory:
    """Deterministic key -> shard (home/replica region) mapping.

    Parameters
    ----------
    n_shards:
        Number of region shards; the plane is grid-tiled exactly as
        the simulation tiles it (most-square rows x cols factoring).
    salt:
        Hash salt (the service's seed) so deployments can re-balance
        by re-salting, mirroring ``GeographicHash(salt=seed)``.
    """

    def __init__(self, n_shards: int, salt: int = 0):
        if n_shards <= 0:
            raise ValueError(f"n_shards must be positive, got {n_shards}")
        self.n_shards = int(n_shards)
        self.table = RegionTable.grid(PLANE_SIDE, PLANE_SIDE, self.n_shards)
        self.geohash = GeographicHash(PLANE_SIDE, PLANE_SIDE, salt=salt)
        self._home_cache: Dict[int, Tuple[int, int]] = {}

    # -- PeerDirectory protocol ---------------------------------------------

    def home_region(self, key: int) -> int:
        return self._home_and_replica(key)[0]

    def replica_region(self, key: int) -> int:
        return self._home_and_replica(key)[1]

    def region_ids(self) -> List[int]:
        return self.table.region_ids()

    def region_distance(self, region_a: int, region_b: int) -> float:
        return self.table.center_distance(region_a, region_b)

    # -- service extras ------------------------------------------------------

    def key_distance(self, key: int, region_id: int) -> float:
        """Distance from the key's hashed location to a region center.

        This is the GD-LD reg_dst term the service books on admitted
        entries: how far the authoritative location of the key lies
        from the shard serving it.
        """
        loc = self.geohash.location_of(key)
        center = self.table.get(region_id).center
        return math.hypot(loc[0] - center[0], loc[1] - center[1])

    def _home_and_replica(self, key: int) -> Tuple[int, int]:
        cached = self._home_cache.get(key)
        if cached is None:
            home, replica = self.geohash.home_and_replica(key, self.table)
            cached = (home.region_id, replica.region_id)
            self._home_cache[key] = cached
        return cached

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ShardDirectory(n_shards={self.n_shards})"
