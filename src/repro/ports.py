"""Runtime-agnostic ports for the cooperative-caching core.

The policy core of this reproduction — the GD-LD cache
(:mod:`repro.core.cache` / :mod:`repro.core.replacement`), the
consistency schemes (:mod:`repro.core.consistency`) and the resilience
layer (:mod:`repro.resilience`) — is deployment-independent: the same
algorithms run inside the discrete-event simulator *and* inside the
:mod:`repro.service` asyncio edge-cache tier.  This module defines the
narrow protocols ("ports", in ports-and-adapters terms) that core code
is allowed to depend on.  Everything here is dependency-free: importing
:mod:`repro.ports` never pulls in the simulator, the radio network, or
asyncio.

Adapters
--------
* The **simulation** supplies virtual time (``Simulator.now``), seeded
  substreams (:class:`repro.sim.RngRegistry`), and a
  :class:`repro.sim.StatRegistry` — all of which satisfy these
  protocols structurally (no inheritance required).
* The **service** (:mod:`repro.service`) supplies a monotonic
  :class:`~repro.service.clock.WallClock`, ``numpy`` generators, a
  :class:`CounterStatSink`, and a geohash
  :class:`~repro.service.routing.ShardDirectory`.

Protocols are ``runtime_checkable`` so tests can assert adapter
conformance with ``isinstance``.
"""

from __future__ import annotations

from typing import (
    Callable,
    Dict,
    Protocol,
    Sequence,
    runtime_checkable,
)

__all__ = [
    "Clock",
    "ConsistencyTransport",
    "CounterStatSink",
    "EventHook",
    "NullStatSink",
    "PeerDirectory",
    "RngStream",
    "StatSink",
]

#: Structured-event hook: ``hook(kind, **fields)``.  The simulation
#: binds this to the event log's ``trace``; the service binds it to the
#: telemetry bus's ``publish_event``.
EventHook = Callable[..., None]


@runtime_checkable
class Clock(Protocol):
    """A source of monotone time in seconds.

    The simulator's virtual clock and the service's wall clock both
    provide it; core code never asks *which* kind of second it is.
    """

    def now(self) -> float:
        """Current time in seconds (monotone non-decreasing)."""
        ...  # pragma: no cover - protocol


@runtime_checkable
class RngStream(Protocol):
    """The slice of ``numpy.random.Generator`` the core draws from.

    Both adapter sets hand the core independent named substreams
    (``RngRegistry.get(name)`` in the sim, ``default_rng(seed)`` spawns
    in the service) so one component's draws never perturb another's.
    """

    def random(self) -> float: ...  # pragma: no cover - protocol

    def uniform(self, low: float, high: float) -> float: ...  # pragma: no cover

    def exponential(self, scale: float) -> float: ...  # pragma: no cover


@runtime_checkable
class StatSink(Protocol):
    """Where the core books counters and scalar observations.

    ``repro.sim.StatRegistry`` satisfies it; so does
    :class:`CounterStatSink` (service) and :class:`NullStatSink`
    (tests / disabled accounting).
    """

    def count(self, name: str, amount: float = 1.0) -> None: ...  # pragma: no cover

    def observe(self, name: str, value: float) -> None: ...  # pragma: no cover


@runtime_checkable
class PeerDirectory(Protocol):
    """Key-placement oracle: which region is authoritative for a key.

    The paper's geographic hash (§2.2, §2.4) supplies the canonical
    implementation; the service wraps the same hash over its shard
    table (:class:`repro.service.routing.ShardDirectory`).
    """

    def home_region(self, key: int) -> int:
        """Region id whose custodians hold the key's authoritative copy."""
        ...  # pragma: no cover - protocol

    def replica_region(self, key: int) -> int:
        """Second-closest region — the key's replica custodian (§2.4)."""
        ...  # pragma: no cover - protocol

    def region_ids(self) -> Sequence[int]:
        """All region ids currently in the table."""
        ...  # pragma: no cover - protocol

    def region_distance(self, region_a: int, region_b: int) -> float:
        """Distance between two regions' centers (GD-LD's reg_dst term)."""
        ...  # pragma: no cover - protocol


@runtime_checkable
class ConsistencyTransport(Protocol):
    """Messaging services a consistency scheme's write path needs.

    The simulation facade (:class:`repro.core.network.PReCinCtNetwork`)
    implements it with simulated radio traffic; the service implements
    it with in-process shard calls.
    """

    def push_update_to_regions(self, updater: int, key: int, category: str) -> None:
        """Push the new value to the key's home and replica regions."""
        ...  # pragma: no cover - protocol

    def flood_invalidation(self, updater: int, key: int, category: str) -> None:
        """Flood a Plain-Push invalidation notice network-wide."""
        ...  # pragma: no cover - protocol


class NullStatSink:
    """A :class:`StatSink` that drops everything (accounting disabled)."""

    def count(self, name: str, amount: float = 1.0) -> None:
        pass

    def observe(self, name: str, value: float) -> None:
        pass

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "NullStatSink()"


class CounterStatSink:
    """Dict-backed :class:`StatSink` for runtimes without a StatRegistry.

    Counters accumulate under their name; observations keep last value,
    running sum and count (enough for the service's gauge snapshots
    without dragging in the simulator's Welford/TimeSeries machinery).
    """

    def __init__(self) -> None:
        self.counters: Dict[str, float] = {}
        self.observations: Dict[str, Dict[str, float]] = {}

    def count(self, name: str, amount: float = 1.0) -> None:
        self.counters[name] = self.counters.get(name, 0.0) + amount

    def observe(self, name: str, value: float) -> None:
        slot = self.observations.setdefault(
            name, {"last": 0.0, "sum": 0.0, "n": 0.0}
        )
        slot["last"] = float(value)
        slot["sum"] += float(value)
        slot["n"] += 1.0

    def value(self, name: str) -> float:
        """Current value of a counter (0.0 if never counted)."""
        return self.counters.get(name, 0.0)

    def snapshot(self) -> Dict[str, float]:
        """Flat ``{name: value}`` view: counters + last observations."""
        out = dict(self.counters)
        for name, slot in self.observations.items():
            out[name] = slot["last"]
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CounterStatSink(counters={len(self.counters)}, "
            f"observations={len(self.observations)})"
        )
