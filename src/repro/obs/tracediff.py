"""Cross-run trace diffing: which *phase* regressed, and why.

Two runs of the same workload (same seed, different fault plan, policy,
or code revision) produce two :meth:`~repro.obs.tracer.Tracer.to_jsonl`
exports.  Eyeballing them answers "run B is slower"; this module
answers "replica failover added +2.8 s p95 at the home phase":

1. **align** the two exports by requester peer, request key, and issue
   order (ties within a ``(peer, key)`` group are paired in issue-time
   order) — a bijection on the common identities, with the leftovers
   reported as ``only_a`` / ``only_b``;
2. per aligned pair, compute the **per-phase latency delta** (the
   ``phase.local`` / ``phase.home`` / ``phase.replica`` / ``phase.poll``
   spans partition each request's latency, so the phase deltas sum to
   the end-to-end latency delta), the **span-count delta** (hops,
   floods, polls), and the **fault tags** each side's phases carry;
3. aggregate into a **ranked regression report** — phases ordered by
   p95 delta — rendered as text (:meth:`TraceDiff.render`) or JSON
   (:meth:`TraceDiff.to_json_dict`).

Everything here is plain post-processing of exported dicts: no
simulator state, no RNG, no ordering dependence beyond the documented
issue-order pairing, so a diff of two deterministic runs is itself
deterministic — which is what lets ``tests/golden/`` pin the baseline
vs. faulted golden-scenario report byte-for-byte.
"""

from __future__ import annotations

import json
import math
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "AlignedPair",
    "PhaseDelta",
    "TraceDiff",
    "align_traces",
    "diff_files",
    "diff_traces",
    "load_traces",
]

#: Canonical request phases, in protocol order (display order for ties).
PHASE_ORDER = ("phase.local", "phase.home", "phase.replica", "phase.poll")

#: Deltas smaller than this are noise from float accumulation, not a
#: regression; used only for regressed/improved *counts*, never to
#: discard the deltas themselves.
DELTA_EPS = 1e-9


# ---------------------------------------------------------------------------
# loading and per-trace views
# ---------------------------------------------------------------------------

def load_traces(path) -> List[Dict[str, Any]]:
    """Read a ``Tracer.to_jsonl`` export; blank lines are skipped.

    An empty file is a valid export of a run that completed no traces
    (e.g. ``trace_sample_rate=0``) and loads as an empty list.
    """
    traces: List[Dict[str, Any]] = []
    with open(Path(path).expanduser(), "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(
                    f"{path}:{lineno}: not a JSON trace record: {exc}"
                ) from None
            if not isinstance(record, dict):
                raise ValueError(
                    f"{path}:{lineno}: trace record must be an object, "
                    f"got {type(record).__name__}"
                )
            traces.append(record)
    return traces


def trace_latency(trace: Dict[str, Any]) -> float:
    """End-to-end latency of one exported trace (tolerates old exports
    without the explicit ``latency`` field)."""
    latency = trace.get("latency")
    if latency is None:
        latency = float(trace.get("end", 0.0)) - float(trace.get("start", 0.0))
    return float(latency)


def phase_durations(trace: Dict[str, Any]) -> Dict[str, float]:
    """Total duration per ``phase.*`` span name (zero-span traces → {})."""
    out: Dict[str, float] = {}
    for span in trace.get("spans") or ():
        name = span.get("name", "")
        if name.startswith("phase."):
            dur = float(span.get("end", 0.0)) - float(span.get("start", 0.0))
            out[name] = out.get(name, 0.0) + dur
    return out


def span_counts(trace: Dict[str, Any]) -> Counter:
    """Span occurrences per name for one exported trace."""
    return Counter(
        span.get("name", "?") for span in trace.get("spans") or ()
    )


def phase_energy(trace: Dict[str, Any]) -> Dict[str, float]:
    """Attributed energy (uJ) per ``phase.*`` span name.

    Exports from runs without energy attribution carry no
    ``energy_uj`` keys and map to ``{}`` — diffing them yields all-zero
    energy deltas, never an error.
    """
    out: Dict[str, float] = {}
    for span in trace.get("spans") or ():
        name = span.get("name", "")
        energy = span.get("energy_uj")
        if name.startswith("phase.") and energy:
            out[name] = out.get(name, 0.0) + float(energy)
    return out


def phase_fault_tags(trace: Dict[str, Any]) -> Dict[str, Counter]:
    """Fault tags per phase span name (``{phase: Counter(kind)}``)."""
    out: Dict[str, Counter] = {}
    for span in trace.get("spans") or ():
        name = span.get("name", "")
        tags = span.get("faults")
        if name.startswith("phase.") and tags:
            out.setdefault(name, Counter()).update(tags)
    return out


# ---------------------------------------------------------------------------
# alignment
# ---------------------------------------------------------------------------

def _identity(trace: Dict[str, Any]) -> Tuple[int, int]:
    return (int(trace.get("peer", -1)), int(trace.get("key", -1)))


def _issue_order(trace: Dict[str, Any]) -> Tuple[float, int]:
    return (float(trace.get("start", 0.0)), int(trace.get("trace_id", -1)))


@dataclass
class AlignedPair:
    """One request matched across the two runs."""

    a: Dict[str, Any]
    b: Dict[str, Any]

    @property
    def latency_delta(self) -> float:
        return trace_latency(self.b) - trace_latency(self.a)

    def phase_deltas(self) -> Dict[str, float]:
        """Per-phase duration deltas (B − A) over the union of phases.

        Because phase spans partition each side's latency, these deltas
        sum to :attr:`latency_delta` — the identity the property tests
        pin down.  A request local-served in A (zero latency, no phase
        spans) but escalated in B contributes B's full phase breakdown.
        """
        pa = phase_durations(self.a)
        pb = phase_durations(self.b)
        return {
            name: pb.get(name, 0.0) - pa.get(name, 0.0)
            for name in set(pa) | set(pb)
        }

    def energy_deltas(self) -> Dict[str, float]:
        """Per-phase attributed-energy deltas in uJ (B − A), over the
        union of phases carrying energy on either side."""
        ea = phase_energy(self.a)
        eb = phase_energy(self.b)
        return {
            name: eb.get(name, 0.0) - ea.get(name, 0.0)
            for name in set(ea) | set(eb)
        }


def align_traces(
    traces_a: Sequence[Dict[str, Any]],
    traces_b: Sequence[Dict[str, Any]],
) -> Tuple[List[AlignedPair], List[Dict[str, Any]], List[Dict[str, Any]]]:
    """Pair traces across runs by ``(peer, key)`` and issue order.

    Within each ``(peer, key)`` group — one peer re-requesting a key
    produces several traces — both sides are sorted by issue time and
    zipped, so the *n*-th re-request in A meets the *n*-th in B.  The
    pairing is a bijection on the common portion of every group; the
    surplus of the longer side lands in ``only_a`` / ``only_b``.

    Returns ``(pairs, only_a, only_b)``; pairs are ordered by the A
    side's issue time for stable downstream reports.
    """
    groups_a: Dict[Tuple[int, int], List[Dict[str, Any]]] = {}
    for trace in traces_a:
        groups_a.setdefault(_identity(trace), []).append(trace)
    groups_b: Dict[Tuple[int, int], List[Dict[str, Any]]] = {}
    for trace in traces_b:
        groups_b.setdefault(_identity(trace), []).append(trace)

    pairs: List[AlignedPair] = []
    only_a: List[Dict[str, Any]] = []
    only_b: List[Dict[str, Any]] = []
    for identity, group_a in groups_a.items():
        group_a.sort(key=_issue_order)
        group_b = groups_b.pop(identity, [])
        group_b.sort(key=_issue_order)
        common = min(len(group_a), len(group_b))
        pairs.extend(
            AlignedPair(a, b) for a, b in zip(group_a[:common], group_b[:common])
        )
        only_a.extend(group_a[common:])
        only_b.extend(group_b[common:])
    for group_b in groups_b.values():
        group_b.sort(key=_issue_order)
        only_b.extend(group_b)
    pairs.sort(key=lambda p: _issue_order(p.a))
    only_a.sort(key=_issue_order)
    only_b.sort(key=_issue_order)
    return pairs, only_a, only_b


# ---------------------------------------------------------------------------
# aggregation
# ---------------------------------------------------------------------------

def _p95(deltas: Sequence[float]) -> float:
    """Deterministic nearest-rank p95 (no interpolation, no numpy)."""
    if not deltas:
        return 0.0
    ordered = sorted(deltas)
    rank = max(math.ceil(0.95 * len(ordered)), 1)
    return ordered[rank - 1]


@dataclass
class PhaseDelta:
    """Aggregate latency delta of one phase across all aligned pairs."""

    phase: str
    #: Pairs where this phase appears on at least one side.
    pairs: int = 0
    regressed: int = 0
    improved: int = 0
    total_delta: float = 0.0
    #: Averaged over *all* aligned pairs (absent phase = zero delta), so
    #: the per-phase means sum to the end-to-end mean latency delta.
    mean_delta: float = 0.0
    p95_delta: float = 0.0
    max_delta: float = 0.0
    #: Attributed-energy deltas (uJ, B − A); zero when neither export
    #: carries span energy (runs without energy attribution).
    total_energy_delta: float = 0.0
    mean_energy_delta: float = 0.0
    p95_energy_delta: float = 0.0
    #: Fault kinds tagged on this phase's spans, per side.
    faults_a: Dict[str, int] = field(default_factory=dict)
    faults_b: Dict[str, int] = field(default_factory=dict)

    @property
    def rank_key(self) -> Tuple[float, float]:
        return (self.p95_delta, self.total_delta)

    @property
    def energy_rank_key(self) -> Tuple[float, float]:
        return (self.p95_energy_delta, self.total_energy_delta)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "phase": self.phase,
            "pairs": self.pairs,
            "regressed": self.regressed,
            "improved": self.improved,
            "total_delta_s": _round(self.total_delta),
            "mean_delta_s": _round(self.mean_delta),
            "p95_delta_s": _round(self.p95_delta),
            "max_delta_s": _round(self.max_delta),
            "total_energy_delta_uj": _round(self.total_energy_delta),
            "mean_energy_delta_uj": _round(self.mean_energy_delta),
            "p95_energy_delta_uj": _round(self.p95_energy_delta),
            "faults_a": dict(sorted(self.faults_a.items())),
            "faults_b": dict(sorted(self.faults_b.items())),
        }


def _round(value: float, digits: int = 9) -> float:
    """Stable float for JSON reports (kills last-ulp noise in goldens)."""
    return round(float(value), digits)


def _fmt_faults(tags: Dict[str, int]) -> str:
    return ",".join(f"{kind}x{n}" for kind, n in sorted(tags.items()))


@dataclass
class TraceDiff:
    """The full cross-run comparison; see :func:`diff_traces`."""

    label_a: str
    label_b: str
    count_a: int
    count_b: int
    aligned: int
    only_a: int
    only_b: int
    latency_total: float
    latency_mean: float
    latency_p95: float
    latency_max: float
    #: Total attributed-energy delta (uJ, B − A) over aligned traces.
    energy_total: float
    #: Ranked worst-first by (p95 delta, total delta).
    phases: List[PhaseDelta]
    #: name → (count in A, count in B) over *aligned* traces only, so
    #: the deltas reflect behaviour change, not workload-size change.
    spans_a: Dict[str, int]
    spans_b: Dict[str, int]
    #: ``"<outcome A> -> <outcome B>"`` → count, pairs that changed class.
    outcome_shifts: Dict[str, int]
    #: Fault kinds over whole traces (trace-level tags), per side.
    faults_a: Dict[str, int]
    faults_b: Dict[str, int]

    # -- queries -----------------------------------------------------------

    def regressions(self, min_delta: float = DELTA_EPS) -> List[PhaseDelta]:
        """Phases whose p95 *or* total delta worsened beyond noise."""
        return [
            p for p in self.phases
            if p.p95_delta > min_delta or p.total_delta > min_delta
        ]

    def energy_ranked(self) -> List[PhaseDelta]:
        """Phases ranked worst energy regression first (uJ deltas)."""
        def order(stat: PhaseDelta) -> Tuple[float, float, int, str]:
            known = (PHASE_ORDER.index(stat.phase)
                     if stat.phase in PHASE_ORDER else len(PHASE_ORDER))
            return (-stat.p95_energy_delta, -stat.total_energy_delta,
                    known, stat.phase)

        return sorted(self.phases, key=order)

    def energy_regressions(
        self, min_delta: float = DELTA_EPS
    ) -> List[PhaseDelta]:
        """Phases whose attributed energy worsened beyond noise."""
        return [
            p for p in self.energy_ranked()
            if p.p95_energy_delta > min_delta
            or p.total_energy_delta > min_delta
        ]

    @property
    def is_zero(self) -> bool:
        """True iff the two runs are request-for-request identical."""
        return (
            self.only_a == 0
            and self.only_b == 0
            and not self.outcome_shifts
            and all(p.total_delta == 0.0 and p.max_delta == 0.0
                    and p.regressed == 0 and p.improved == 0
                    and p.total_energy_delta == 0.0
                    for p in self.phases)
            and self.latency_total == 0.0
            and self.energy_total == 0.0
            and self.spans_a == self.spans_b
        )

    def span_deltas(self) -> Dict[str, int]:
        names = set(self.spans_a) | set(self.spans_b)
        return {
            name: self.spans_b.get(name, 0) - self.spans_a.get(name, 0)
            for name in sorted(names)
        }

    # -- serialization -----------------------------------------------------

    def to_json_dict(self) -> Dict[str, Any]:
        return {
            "label_a": self.label_a,
            "label_b": self.label_b,
            "traces": {
                "a": self.count_a,
                "b": self.count_b,
                "aligned": self.aligned,
                "only_a": self.only_a,
                "only_b": self.only_b,
            },
            "latency": {
                "total_delta_s": _round(self.latency_total),
                "mean_delta_s": _round(self.latency_mean),
                "p95_delta_s": _round(self.latency_p95),
                "max_delta_s": _round(self.latency_max),
            },
            "energy": {
                "total_delta_uj": _round(self.energy_total),
                "ranked_phases": [
                    {
                        "phase": p.phase,
                        "total_energy_delta_uj":
                            _round(p.total_energy_delta),
                        "mean_energy_delta_uj":
                            _round(p.mean_energy_delta),
                        "p95_energy_delta_uj":
                            _round(p.p95_energy_delta),
                    }
                    for p in self.energy_ranked()
                ],
            },
            "phases": [p.to_dict() for p in self.phases],
            "spans": {
                name: {
                    "a": self.spans_a.get(name, 0),
                    "b": self.spans_b.get(name, 0),
                    "delta": delta,
                }
                for name, delta in self.span_deltas().items()
            },
            "outcome_shifts": dict(sorted(self.outcome_shifts.items())),
            "faults": {
                "a": dict(sorted(self.faults_a.items())),
                "b": dict(sorted(self.faults_b.items())),
            },
        }

    def write_json(self, path) -> None:
        from repro.obs.export import export_path

        export_path(path).write_text(
            json.dumps(self.to_json_dict(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )

    def render(self, top: int = 0) -> str:
        """The ranked text report (``top`` limits listed phases; 0 = all)."""
        lines: List[str] = []
        add = lines.append
        add(f"trace diff: {self.label_a} ({self.count_a} traces) -> "
            f"{self.label_b} ({self.count_b} traces)")
        add(f"aligned {self.aligned} request(s) by (peer, key, issue order); "
            f"{self.only_a} only in {self.label_a}, "
            f"{self.only_b} only in {self.label_b}")
        if not self.aligned:
            add("nothing aligned: no common (peer, key) identities")
            return "\n".join(lines)
        add(f"end-to-end latency delta: total {self.latency_total:+.4f}s, "
            f"mean {self.latency_mean:+.4f}s, p95 {self.latency_p95:+.4f}s, "
            f"max {self.latency_max:+.4f}s")

        regressions = self.regressions()
        if regressions:
            worst = regressions[0]
            blame = _fmt_faults(worst.faults_b)
            add(f"worst regression: {worst.phase} added "
                f"{worst.p95_delta:+.4f}s p95"
                + (f" (faults in {self.label_b}: {blame})" if blame else ""))
        else:
            add("no phase regressions beyond noise")

        add("")
        add("ranked phases (worst p95 delta first):")
        listed = self.phases[:top] if top > 0 else self.phases
        for rank, p in enumerate(listed, start=1):
            faults = _fmt_faults(p.faults_b)
            add(f"  {rank}. {p.phase:<15} p95 {p.p95_delta:+9.4f}s  "
                f"mean {p.mean_delta:+9.4f}s  total {p.total_delta:+9.4f}s  "
                f"regressed {p.regressed}/{p.pairs}"
                + (f"  faults[{self.label_b}]: {faults}" if faults else ""))

        energy_phases = [p for p in self.energy_ranked()
                         if p.total_energy_delta != 0.0
                         or p.p95_energy_delta != 0.0]
        if energy_phases:
            add("")
            add(f"attributed energy delta: total "
                f"{self.energy_total:+.1f} uJ")
            add("ranked phases by energy (worst p95 delta first):")
            for rank, p in enumerate(energy_phases, start=1):
                add(f"  {rank}. {p.phase:<15} "
                    f"p95 {p.p95_energy_delta:+11.1f} uJ  "
                    f"mean {p.mean_energy_delta:+11.1f} uJ  "
                    f"total {p.total_energy_delta:+11.1f} uJ")

        deltas = {n: d for n, d in self.span_deltas().items() if d != 0}
        if deltas:
            add("")
            add("span-count deltas (aligned traces):")
            for name in sorted(deltas, key=lambda n: -abs(deltas[n])):
                add(f"  {name:<20} {self.spans_a.get(name, 0):>7} -> "
                    f"{self.spans_b.get(name, 0):>7}  ({deltas[name]:+d})")

        if self.outcome_shifts:
            add("")
            total_shifted = sum(self.outcome_shifts.values())
            add(f"outcome shifts ({total_shifted} request(s) changed class):")
            for shift, count in sorted(
                self.outcome_shifts.items(), key=lambda kv: (-kv[1], kv[0])
            ):
                add(f"  {shift:<28} x{count}")
        return "\n".join(lines)


def diff_traces(
    traces_a: Iterable[Dict[str, Any]],
    traces_b: Iterable[Dict[str, Any]],
    label_a: str = "A",
    label_b: str = "B",
) -> TraceDiff:
    """Compare two trace exports (lists of ``Trace.to_dict`` dicts)."""
    traces_a = list(traces_a)
    traces_b = list(traces_b)
    pairs, only_a, only_b = align_traces(traces_a, traces_b)

    latency_deltas = [p.latency_delta for p in pairs]
    per_phase_deltas: Dict[str, List[float]] = {}
    per_phase_energy: Dict[str, List[float]] = {}
    phase_stats: Dict[str, PhaseDelta] = {}
    spans_a: Counter = Counter()
    spans_b: Counter = Counter()
    outcome_shifts: Counter = Counter()
    faults_a: Counter = Counter()
    faults_b: Counter = Counter()

    for pair in pairs:
        spans_a.update(span_counts(pair.a))
        spans_b.update(span_counts(pair.b))
        faults_a.update(pair.a.get("faults") or ())
        faults_b.update(pair.b.get("faults") or ())
        out_a = pair.a.get("outcome")
        out_b = pair.b.get("outcome")
        if out_a != out_b:
            outcome_shifts[f"{out_a} -> {out_b}"] += 1
        tags_a = phase_fault_tags(pair.a)
        tags_b = phase_fault_tags(pair.b)
        for phase, delta in pair.phase_deltas().items():
            stat = phase_stats.get(phase)
            if stat is None:
                stat = phase_stats[phase] = PhaseDelta(phase)
            stat.pairs += 1
            stat.total_delta += delta
            if delta > DELTA_EPS:
                stat.regressed += 1
            elif delta < -DELTA_EPS:
                stat.improved += 1
            per_phase_deltas.setdefault(phase, []).append(delta)
        for phase, delta in pair.energy_deltas().items():
            stat = phase_stats.setdefault(phase, PhaseDelta(phase))
            stat.total_energy_delta += delta
            per_phase_energy.setdefault(phase, []).append(delta)
        for phase, tags in tags_a.items():
            stat = phase_stats.setdefault(phase, PhaseDelta(phase))
            for kind, n in tags.items():
                stat.faults_a[kind] = stat.faults_a.get(kind, 0) + n
        for phase, tags in tags_b.items():
            stat = phase_stats.setdefault(phase, PhaseDelta(phase))
            for kind, n in tags.items():
                stat.faults_b[kind] = stat.faults_b.get(kind, 0) + n

    aligned = len(pairs)
    for phase, stat in phase_stats.items():
        deltas = per_phase_deltas.get(phase, [])
        stat.mean_delta = stat.total_delta / aligned if aligned else 0.0
        stat.p95_delta = _p95(deltas)
        stat.max_delta = max(deltas, default=0.0)
        stat.mean_energy_delta = (
            stat.total_energy_delta / aligned if aligned else 0.0
        )
        stat.p95_energy_delta = _p95(per_phase_energy.get(phase, []))

    # Rank worst-first; protocol phase order breaks exact ties so the
    # report (and its golden fixture) is fully deterministic.
    def order(stat: PhaseDelta) -> Tuple[float, float, int, str]:
        known = (PHASE_ORDER.index(stat.phase)
                 if stat.phase in PHASE_ORDER else len(PHASE_ORDER))
        return (-stat.p95_delta, -stat.total_delta, known, stat.phase)

    ranked = sorted(phase_stats.values(), key=order)

    return TraceDiff(
        label_a=label_a,
        label_b=label_b,
        count_a=len(traces_a),
        count_b=len(traces_b),
        aligned=aligned,
        only_a=len(only_a),
        only_b=len(only_b),
        latency_total=sum(latency_deltas),
        latency_mean=sum(latency_deltas) / aligned if aligned else 0.0,
        latency_p95=_p95(latency_deltas),
        latency_max=max(latency_deltas, default=0.0),
        energy_total=sum(
            stat.total_energy_delta for stat in phase_stats.values()
        ),
        phases=ranked,
        spans_a=dict(sorted(spans_a.items())),
        spans_b=dict(sorted(spans_b.items())),
        outcome_shifts=dict(outcome_shifts),
        faults_a=dict(faults_a),
        faults_b=dict(faults_b),
    )


def diff_files(
    path_a, path_b,
    label_a: Optional[str] = None,
    label_b: Optional[str] = None,
) -> TraceDiff:
    """Diff two ``Tracer.to_jsonl`` exports on disk."""
    return diff_traces(
        load_traces(path_a),
        load_traces(path_b),
        label_a=label_a or Path(path_a).name,
        label_b=label_b or Path(path_b).name,
    )
