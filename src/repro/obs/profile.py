"""Wall-clock profiling of simulator hot paths.

The determinism story is built on *simulated* time; this module is the
one place that deliberately measures *wall-clock* time, answering the
ROADMAP question "where does a run actually spend its CPU?".  Sections
nest (``engine.dispatch`` encloses ``routing.gpsr`` encloses
``cache.replacement``), and the profiler reports **self time** — time
inside a section minus time inside its children — so the per-phase
numbers are additive rather than double-counted.

Profiling output is wall-clock and therefore machine-dependent: it is
surfaced in the run report's ``profile`` field, which is intentionally
*excluded* from the determinism digests
(:func:`repro.faults.audit.report_summary` enumerates the hashed
fields explicitly).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, List

__all__ = ["PerfProfiler", "NULL_PROFILER"]


class PerfProfiler:
    """Accumulates per-section wall-clock self-time.

    Use as a callable context manager::

        with profiler.perf_section("routing.gpsr"):
            ...

    Hot-path layers hold a ``profile`` attribute that is either a
    profiler or ``None``; the ``None`` case costs one attribute check.
    """

    def __init__(self, clock=time.perf_counter):
        self._clock = clock
        # section -> [calls, total_s, child_s]
        self._sections: Dict[str, List[float]] = {}
        self._stack: List[str] = []

    @contextmanager
    def perf_section(self, name: str):
        entry = self._sections.get(name)
        if entry is None:
            entry = self._sections[name] = [0, 0.0, 0.0]
        self._stack.append(name)
        start = self._clock()
        try:
            yield
        finally:
            elapsed = self._clock() - start
            self._stack.pop()
            entry[0] += 1
            entry[1] += elapsed
            if self._stack:
                self._sections[self._stack[-1]][2] += elapsed

    def report(self) -> Dict[str, Dict[str, float]]:
        """Per-section ``{calls, total_s, self_s}``, self-time additive."""
        out: Dict[str, Dict[str, float]] = {}
        for name, (calls, total, child) in sorted(self._sections.items()):
            out[name] = {
                "calls": float(calls),
                "total_s": total,
                "self_s": max(0.0, total - child),
            }
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PerfProfiler(sections={sorted(self._sections)})"


class _NullProfiler:
    """Shared no-op profiler: ``perf_section`` yields immediately.

    Lets call sites write ``profile = profiler or NULL_PROFILER`` once
    instead of branching per call, without paying a context-manager
    allocation — the null section is a reused singleton.
    """

    __slots__ = ()

    class _NullSection:
        __slots__ = ()

        def __enter__(self):
            return None

        def __exit__(self, *exc):
            return False

    _SECTION = _NullSection()

    def perf_section(self, name: str):
        return self._SECTION

    def report(self) -> Dict[str, Dict[str, float]]:
        return {}


NULL_PROFILER = _NullProfiler()
