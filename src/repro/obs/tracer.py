"""Request-level tracing: per-request causal spans on simulated time.

Every request issued by the workload gets a **trace**: a stable trace
id, its issuing peer and key, and a list of typed **spans**.  Two span
families exist:

* **phase spans** (``phase.local``, ``phase.home``, ``phase.replica``,
  ``phase.poll``) partition the request's lifetime exactly: each phase
  span ends the moment the next begins, and the last one ends when the
  request is served or fails, so the phase durations sum to the
  request's reported latency (the ``repro trace --slowest`` breakdown
  relies on this identity);
* **point spans** (``geohash.resolve``, ``gpsr.hop``, ``region.flood``,
  ``cache.lookup``, ``cache.admit``, ``cache.evict``,
  ``consistency.poll``, ``consistency.push``, ``failover.replica``)
  are zero-duration markers recording which mechanism fired, where.

When a :class:`~repro.faults.plan.FaultPlan` rule fires on a message
belonging to an open trace, the fault kind is tagged onto both the
trace and its currently open phase span — the "why was this request
slow" answer the flat event log cannot give.

Determinism
-----------
The tracer is a pure observer: it never schedules events and never
touches the :class:`StatRegistry`, and its only randomness — the
optional head-based :class:`~repro.obs.sampling.TraceSampler` — draws
from a dedicated observer stream, so a traced (or sampled) run is
byte-identical (event-log and report digests) to the same run without
tracing.  All timestamps are simulated time.

Sampling
--------
With a sampler installed, :meth:`Tracer.begin` decides at the trace
head whether the request is recorded at all; rejected requests return
``None`` and every downstream recording call (``bind``, ``phase``,
``point``, ``finish``) accepts ``None`` as a no-op.  Trace ids are
consumed for rejected traces too, so a sampled export's ids line up
with the same run traced in full.

Exports
-------
:meth:`Tracer.to_jsonl` writes one JSON object per trace;
:meth:`Tracer.to_chrome_trace` writes the Chrome trace-event format
(load the file in Perfetto / ``chrome://tracing``; one row per peer,
simulated microseconds on the time axis).  Both accept str or
``os.PathLike`` paths, expand ``~``, and create missing parent
directories.
"""

from __future__ import annotations

import json
from collections import Counter, deque
from pathlib import Path
from typing import Any, Deque, Dict, Iterator, List, Optional

__all__ = ["Span", "Trace", "Tracer"]

#: Spans retained per trace before per-trace dropping kicks in.  A deep
#: perimeter detour can touch hundreds of hops; the cap bounds memory
#: on pathological routes while keeping normal traces complete.
SPANS_PER_TRACE_CAP = 512


class Span:
    """One typed span: an interval (or instant) of simulated time."""

    __slots__ = ("name", "start", "end", "peer", "attrs", "fault_tags",
                 "energy_uj")

    def __init__(self, name: str, start: float, peer: int = -1, **attrs: Any):
        self.name = name
        self.start = start
        self.end = start
        self.peer = peer
        self.attrs = attrs
        self.fault_tags: List[str] = []
        #: Radio energy attributed to this span (uJ); filled by the
        #: :class:`~repro.energy.attribution.EnergyAttributor` on phase
        #: spans when energy attribution is enabled, else stays 0.
        self.energy_uj: float = 0.0

    @property
    def duration(self) -> float:
        return self.end - self.start

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "peer": self.peer,
        }
        if self.attrs:
            out["attrs"] = dict(self.attrs)
        if self.fault_tags:
            out["faults"] = list(self.fault_tags)
        if self.energy_uj:
            out["energy_uj"] = self.energy_uj
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Span({self.name!r}, {self.start:.4f}..{self.end:.4f})"


class Trace:
    """The full causal record of one request."""

    __slots__ = (
        "trace_id",
        "peer",
        "key",
        "start",
        "end",
        "outcome",
        "spans",
        "fault_tags",
        "dropped_spans",
        "open_phase",
    )

    def __init__(self, trace_id: int, peer: int, key: int, start: float):
        self.trace_id = trace_id
        self.peer = peer
        self.key = key
        self.start = start
        self.end = start
        #: Serve class ("local-static", "home", ...), "failed", or None
        #: while the request is still in flight.
        self.outcome: Optional[str] = None
        self.spans: List[Span] = []
        self.fault_tags: List[str] = []
        self.dropped_spans = 0
        self.open_phase: Optional[Span] = None

    @property
    def latency(self) -> float:
        return self.end - self.start

    def phase_breakdown(self) -> List[Span]:
        """The phase spans, in order (they partition ``latency``)."""
        return [s for s in self.spans if s.name.startswith("phase.")]

    def add_span(self, span: Span) -> bool:
        if len(self.spans) >= SPANS_PER_TRACE_CAP:
            self.dropped_spans += 1
            return False
        self.spans.append(span)
        return True

    def to_dict(self) -> Dict[str, Any]:
        return {
            "trace_id": self.trace_id,
            "peer": self.peer,
            "key": self.key,
            "start": self.start,
            "end": self.end,
            "latency": self.latency,
            "outcome": self.outcome,
            "faults": list(self.fault_tags),
            "dropped_spans": self.dropped_spans,
            "spans": [s.to_dict() for s in self.spans],
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Trace(#{self.trace_id}, peer={self.peer}, key={self.key}, "
            f"outcome={self.outcome!r}, spans={len(self.spans)})"
        )


class Tracer:
    """Collects request traces for one simulation run.

    Parameters
    ----------
    clock:
        Zero-argument callable returning the current simulated time
        (``lambda: sim.now``).
    capacity:
        Completed traces retained (oldest dropped first); ``None``
        retains everything.
    sampler:
        Optional :class:`~repro.obs.sampling.TraceSampler` consulted
        once per :meth:`begin`; ``None`` records every trace.
    """

    def __init__(self, clock, capacity: Optional[int] = 100_000,
                 sampler=None):
        self._clock = clock
        self._completed: Deque[Trace] = deque(maxlen=capacity)
        self._capacity = capacity
        self._sampler = sampler
        #: Open traces by the request id currently carrying them.  One
        #: trace may be re-bound as its request id changes hands (a
        #: poll that restarts as a home search keeps its request id).
        self._by_request: Dict[int, Trace] = {}
        self._next_trace_id = 0
        self.dropped_traces = 0
        #: Traces rejected at the head by the sampler.
        self.sampled_out = 0

    # -- lifecycle --------------------------------------------------------

    def begin(self, peer: int, key: int) -> Optional[Trace]:
        """Open a trace for a request issued now.

        Returns ``None`` when the head-based sampler rejects the
        request; the trace id is consumed either way, so ids are stable
        across sample rates.
        """
        trace_id = self._next_trace_id
        self._next_trace_id += 1
        if self._sampler is not None and not self._sampler.sample():
            self.sampled_out += 1
            return None
        return Trace(trace_id, peer, key, self._clock())

    def bind(self, trace: Optional[Trace], request_id: int) -> None:
        """Associate an open trace with an in-flight request id."""
        if trace is None:
            return
        self._by_request[request_id] = trace

    def lookup(self, request_id: Optional[int]) -> Optional[Trace]:
        """The open trace carried by ``request_id``, if any."""
        if request_id is None:
            return None
        return self._by_request.get(request_id)

    def phase(self, trace: Optional[Trace], name: str, **attrs: Any) -> None:
        """End the open phase span (if any) and start ``phase.<name>``."""
        if trace is None:
            return
        now = self._clock()
        if trace.open_phase is not None:
            trace.open_phase.end = now
        span = Span(f"phase.{name}", now, peer=trace.peer, **attrs)
        trace.open_phase = span if trace.add_span(span) else None

    def point(self, trace: Optional[Trace], name: str, peer: int = -1,
              **attrs: Any) -> None:
        """Record an instantaneous typed span on ``trace`` (no-op on None)."""
        if trace is None:
            return
        trace.add_span(Span(name, self._clock(), peer=peer, **attrs))

    def point_by_request(self, request_id: Optional[int], name: str,
                         peer: int = -1, **attrs: Any) -> None:
        """Record a point span on the trace carried by ``request_id``.

        Used by layers that only see a message (routing hops, remote
        floods, fault hooks) — the request id is the correlator.
        """
        self.point(self.lookup(request_id), name, peer=peer, **attrs)

    def tag_fault(self, request_id: Optional[int], kind: str) -> None:
        """Tag the trace (and its open phase span) with a fired fault rule."""
        trace = self.lookup(request_id)
        if trace is None:
            return
        trace.fault_tags.append(kind)
        if trace.open_phase is not None:
            trace.open_phase.fault_tags.append(kind)

    def finish(self, trace: Optional[Trace], outcome: str,
               request_id: Optional[int] = None) -> None:
        """Close a trace: end its open phase and file it as completed."""
        if trace is None:
            return
        now = self._clock()
        trace.end = now
        if trace.open_phase is not None:
            trace.open_phase.end = now
            trace.open_phase = None
        trace.outcome = outcome
        if request_id is not None:
            self._by_request.pop(request_id, None)
        if (
            self._capacity is not None
            and len(self._completed) == self._capacity
        ):
            self.dropped_traces += 1
        self._completed.append(trace)

    def discard(self, request_id: int) -> None:
        """Drop the trace carried by ``request_id`` without filing it."""
        self._by_request.pop(request_id, None)

    # -- queries ----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._completed)

    def __iter__(self) -> Iterator[Trace]:
        return iter(self._completed)

    @property
    def open_traces(self) -> int:
        return len(self._by_request)

    def completed(self, outcome: Optional[str] = None) -> List[Trace]:
        """Completed traces, optionally filtered by outcome."""
        if outcome is None:
            return list(self._completed)
        return [t for t in self._completed if t.outcome == outcome]

    def slowest(self, n: int = 5) -> List[Trace]:
        """The ``n`` highest-latency completed traces (served or failed)."""
        return sorted(
            self._completed, key=lambda t: t.latency, reverse=True
        )[:n]

    def span_counts(self) -> Dict[str, int]:
        """Total span counts per span name, across all completed traces."""
        counts: Counter = Counter()
        for trace in self._completed:
            counts.update(span.name for span in trace.spans)
        return dict(counts)

    def outcome_counts(self) -> Dict[str, int]:
        return dict(Counter(t.outcome for t in self._completed))

    # -- exporters --------------------------------------------------------

    @staticmethod
    def _export_path(path) -> Path:
        """Normalize an export target (see :func:`repro.obs.export.export_path`)."""
        from repro.obs.export import export_path

        return export_path(path)

    def to_jsonl(self, path) -> int:
        """Write one JSON object per completed trace; returns the count.

        Zero completed traces produce a valid empty file (a sampled-out
        or trace-free run still exports, and an empty export diffs
        cleanly against any other).
        """
        from repro.obs.export import write_jsonl

        return write_jsonl(path, (t.to_dict() for t in self._completed))

    @staticmethod
    def from_jsonl(path) -> List[Dict[str, Any]]:
        """Read a :meth:`to_jsonl` export back as trace dicts.

        Returns plain dicts (the exported schema), which is what the
        differ (:mod:`repro.obs.tracediff`) consumes; a line that is
        not a JSON trace record raises ``ValueError`` with its
        ``path:lineno``.
        """
        from repro.obs.export import read_jsonl

        records = read_jsonl(path)
        for i, record in enumerate(records, start=1):
            if "trace_id" not in record or "spans" not in record:
                raise ValueError(f"{path}:{i}: not a JSON trace record")
        return records

    def to_chrome_trace(self, path) -> int:
        """Export the Chrome trace-event format (Perfetto-viewable).

        Simulated seconds map to trace microseconds; each peer becomes
        a thread row; phase spans are complete ("X") events and point
        spans are instant ("i") events.  Returns the event count.
        """
        events: List[Dict[str, Any]] = []
        for trace in self._completed:
            for span in trace.spans:
                args: Dict[str, Any] = {
                    "trace_id": trace.trace_id,
                    "key": trace.key,
                }
                args.update({k: repr(v) if not isinstance(
                    v, (bool, int, float, str)) else v
                    for k, v in span.attrs.items()})
                if span.fault_tags:
                    args["faults"] = ",".join(span.fault_tags)
                tid = span.peer if span.peer >= 0 else trace.peer
                common = {
                    "name": span.name,
                    "pid": 0,
                    "tid": int(tid),
                    "ts": span.start * 1e6,
                    "cat": span.name.split(".", 1)[0],
                    "args": args,
                }
                if span.end > span.start:
                    events.append({**common, "ph": "X",
                                   "dur": span.duration * 1e6})
                else:
                    events.append({**common, "ph": "i", "s": "t"})
        with open(self._export_path(path), "w", encoding="utf-8") as fh:
            json.dump({"traceEvents": events,
                       "displayTimeUnit": "ms"}, fh)
        return len(events)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Tracer(completed={len(self._completed)}, "
            f"open={len(self._by_request)}, dropped={self.dropped_traces}, "
            f"sampled_out={self.sampled_out})"
        )
