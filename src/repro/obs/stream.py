"""Streaming telemetry bus: fan-out of live samples to pure consumers.

The :class:`~repro.obs.telemetry.TelemetrySampler` buffers every sampled
row into a post-hoc :class:`~repro.obs.telemetry.TelemetryTable`; long
runs are flying blind until they finish.  :class:`TelemetryBus` adds the
*live* path: the sampler publishes each row to the bus the moment it is
taken, and the bus fans it out to any number of subscribers:

* :class:`RingSubscriber` — a bounded in-memory window of recent rows
  (the sparkline history behind the live dashboard);
* :class:`JsonlLiveSink` — an append-per-sample JSONL file, flushed
  after every record so ``tail -f`` (and ``repro watch``) can follow a
  running simulation mid-run;
* :class:`MetricsSnapshotWriter` — a Prometheus-style text-exposition
  file, atomically rewritten per sample, for scraping the *current*
  gauge values;
* plain callables registered with :meth:`TelemetryBus.add_listener`
  (the dashboard's render hook).

Besides rows, the bus carries **events** — out-of-band markers such as
anomaly-rule firings (:meth:`TelemetryBus.publish_event`).  Sinks write
them as their own JSONL records and the dashboard renders them as
banners; ``repro watch`` replays both.

Determinism: everything here is a pure consumer of already-collected
rows.  No RNG, no stat writes, no simulation-state reads, no event-loop
interaction beyond the sampler tick that feeds ``publish`` — so arming
the bus (with any sink set) leaves run digests byte-identical, which
the golden-digest suite asserts.
"""

from __future__ import annotations

import json
import os
import re
from collections import deque
from typing import Any, Callable, Dict, List, Optional

from repro.obs.export import export_path

__all__ = [
    "JsonlLiveSink",
    "MetricsSnapshotWriter",
    "RingSubscriber",
    "TelemetryBus",
]


class RingSubscriber:
    """Bounded window of the most recent published rows and events.

    ``rows`` holds ``(t, values)`` pairs (values are the published dict,
    not a copy — consumers must treat them as read-only), ``events``
    holds ``(t, kind, payload)`` triples.  Both are ``deque`` ring
    buffers, so a subscriber's memory is bounded however long the run.
    """

    def __init__(self, history: int = 120):
        if history <= 0:
            raise ValueError(f"subscriber history must be positive: {history!r}")
        self.rows: deque = deque(maxlen=history)
        self.events: deque = deque(maxlen=history)

    def on_row(self, t: float, values: Dict[str, float]) -> None:
        self.rows.append((t, values))

    def on_event(self, t: float, kind: str, payload: Dict[str, Any]) -> None:
        self.events.append((t, kind, payload))

    @property
    def last(self) -> Optional[Dict[str, float]]:
        """The most recent row's values (None before the first sample)."""
        return self.rows[-1][1] if self.rows else None

    def series(self, name: str) -> List[float]:
        """Recent history of one column (absent samples carry 0.0)."""
        return [values.get(name, 0.0) for _, values in self.rows]

    def __len__(self) -> int:
        return len(self.rows)


class JsonlLiveSink:
    """Append-per-sample JSONL export, flushed so ``tail -f`` works.

    The file starts with a ``{"record": "header", "live": true}`` line,
    grows one ``{"record": "row", "t": ..., <column>: ...}`` line per
    published sample (plus ``{"record": "anomaly", ...}`` lines for bus
    events), and ends with a ``{"record": "end", "rows": N}`` line when
    the run closes the bus — which is how a follower distinguishes "the
    run is finished" from "the run is just quiet".

    The format is a strict superset of
    :meth:`~repro.obs.telemetry.TelemetryTable.to_jsonl`, so a finished
    live export loads back with
    :meth:`~repro.obs.telemetry.TelemetryTable.from_jsonl` (event
    records are skipped on load).
    """

    def __init__(self, path):
        self.path = export_path(path)
        self.rows_written = 0
        self._fh = open(self.path, "w", encoding="utf-8")
        self._write({"record": "header", "live": True, "schema": 1})
        self._closed = False

    def _write(self, record: Dict[str, Any]) -> None:
        self._fh.write(json.dumps(record, sort_keys=True, default=repr))
        self._fh.write("\n")
        self._fh.flush()

    def on_row(self, t: float, values: Dict[str, float]) -> None:
        self._write({"record": "row", "t": t, **values})
        self.rows_written += 1

    def on_event(self, t: float, kind: str, payload: Dict[str, Any]) -> None:
        self._write({"record": kind, "t": t, **payload})

    def close(self) -> None:
        """Write the end marker and close the file.  Idempotent."""
        if self._closed:
            return
        self._closed = True
        self._write({"record": "end", "rows": self.rows_written})
        self._fh.close()


#: Characters legal in a Prometheus metric name; everything else maps to _.
_PROM_BAD = re.compile(r"[^a-zA-Z0-9_:]")


def prometheus_name(series: str) -> str:
    """``stat.net.unicast_sent`` -> ``repro_stat_net_unicast_sent``."""
    return "repro_" + _PROM_BAD.sub("_", series)


class MetricsSnapshotWriter:
    """Prometheus text-exposition snapshot of the latest telemetry row.

    Every published row atomically rewrites ``path`` (write to a
    sibling temp file, then ``os.replace``) with one gauge per column
    plus ``repro_sim_time_seconds``, so a scraper — or a human with
    ``cat`` — always sees one complete, current snapshot and never a
    torn write.
    """

    def __init__(self, path):
        self.path = export_path(path)
        self.snapshots_written = 0

    def on_row(self, t: float, values: Dict[str, float]) -> None:
        lines = [
            "# TYPE repro_sim_time_seconds gauge",
            f"repro_sim_time_seconds {t:g}",
        ]
        for series in sorted(values):
            name = prometheus_name(series)
            lines.append(f"# TYPE {name} gauge")
            lines.append(f"{name} {values[series]:g}")
        tmp = self.path.with_name(self.path.name + ".tmp")
        tmp.write_text("\n".join(lines) + "\n", encoding="utf-8")
        os.replace(tmp, self.path)
        self.snapshots_written += 1

    def on_event(self, t: float, kind: str, payload: Dict[str, Any]) -> None:
        pass  # snapshots expose current gauges only

    def close(self) -> None:
        pass  # the last snapshot *is* the final state


class TelemetryBus:
    """Fan-out of live telemetry rows and events to subscribers.

    The sampler calls :meth:`publish` once per sampled row; anomaly
    watchers call :meth:`publish_event` per firing.  Subscribers are
    either sink objects (``on_row``/``on_event``/optional ``close``) or
    plain ``(t, values)`` callables via :meth:`add_listener`.
    """

    def __init__(self):
        self._sinks: List[Any] = []
        self._listeners: List[Callable[[float, Dict[str, float]], None]] = []
        self.rows_published = 0
        self.events_published = 0
        self._closed = False

    def subscribe(self, history: int = 120) -> RingSubscriber:
        """Attach and return a bounded :class:`RingSubscriber`."""
        sub = RingSubscriber(history)
        self._sinks.append(sub)
        return sub

    def attach_sink(self, sink) -> None:
        """Attach an ``on_row``/``on_event`` sink (live file, snapshot)."""
        self._sinks.append(sink)

    def add_listener(
        self, fn: Callable[[float, Dict[str, float]], None]
    ) -> None:
        """Attach a plain callable invoked after sinks see each row."""
        self._listeners.append(fn)

    def publish(self, t: float, values: Dict[str, float]) -> None:
        """Fan one sampled row out to every subscriber."""
        self.rows_published += 1
        for sink in self._sinks:
            sink.on_row(t, values)
        for fn in self._listeners:
            fn(t, values)

    def publish_event(
        self, t: float, kind: str, payload: Optional[Dict[str, Any]] = None
    ) -> None:
        """Fan an out-of-band event (e.g. an anomaly firing) out."""
        self.events_published += 1
        payload = payload or {}
        for sink in self._sinks:
            on_event = getattr(sink, "on_event", None)
            if on_event is not None:
                on_event(t, kind, payload)

    def close(self) -> None:
        """Close every sink that has a ``close`` (end-of-run).  Idempotent."""
        if self._closed:
            return
        self._closed = True
        for sink in self._sinks:
            close = getattr(sink, "close", None)
            if close is not None:
                close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TelemetryBus(sinks={len(self._sinks)}, "
            f"rows={self.rows_published}, events={self.events_published})"
        )
