"""Telemetry-driven anomaly triggers for the flight recorder.

The :class:`~repro.obs.recorder.FlightRecorder` dumps forensic bundles
on *failures* (request failed, invariant violated, engine crash).  This
module adds **declarative threshold rules** on any telemetry series, so
a bundle is captured the moment a run goes *weird*, not only when it
goes wrong: MAC backlog climbing past 5 s, region occupancy imbalance,
joules-per-request spiking.

A rule is ``<series><op><threshold>`` with ``op`` one of ``>``/``<``,
e.g. ``mac.backlog_max_s>5`` or ``stat.requests.served<1``.  Rules are
checked against every sampled telemetry row (the
:class:`~repro.obs.telemetry.TelemetrySampler` ``on_sample`` hook); a
rule that fires dumps one bundle and re-arms only after the series
returns to the safe side (hysteresis), so a persistently-breached
threshold produces one bundle per excursion instead of one per sample.

Determinism: the watcher is a pure observer — it reads the already
collected row, never touches simulation state, RNG, or stats, and its
only side effect is writing bundle files to the host filesystem.
"""

from __future__ import annotations

from typing import Dict, List, Optional

__all__ = ["AnomalyRule", "AnomalyWatcher"]

_OPS = (">", "<")


class AnomalyRule:
    """One threshold rule on a telemetry series."""

    def __init__(self, series: str, op: str, threshold: float):
        if op not in _OPS:
            raise ValueError(f"anomaly op must be one of {_OPS}, got {op!r}")
        if not series:
            raise ValueError("anomaly rule needs a series name")
        self.series = series
        self.op = op
        self.threshold = float(threshold)

    @classmethod
    def parse(cls, spec: str) -> "AnomalyRule":
        """Parse ``"<series><op><threshold>"`` (e.g. ``mac.backlog_max_s>5``).

        The first ``>`` or ``<`` splits series from threshold, so
        series names may contain dots and digits but not comparison
        operators.
        """
        spec = spec.strip()
        for i, ch in enumerate(spec):
            if ch in _OPS:
                series, raw = spec[:i].strip(), spec[i + 1:].strip()
                if not series or not raw:
                    break
                try:
                    threshold = float(raw)
                except ValueError:
                    raise ValueError(
                        f"anomaly threshold is not a number: {spec!r}"
                    ) from None
                return cls(series, ch, threshold)
        raise ValueError(
            f"anomaly rule must look like 'series>threshold' or "
            f"'series<threshold', got {spec!r}"
        )

    def breached(self, value: float) -> bool:
        if self.op == ">":
            return value > self.threshold
        return value < self.threshold

    @property
    def spec(self) -> str:
        return f"{self.series}{self.op}{self.threshold:g}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"AnomalyRule({self.spec!r})"


class AnomalyWatcher:
    """Checks a rule set against each telemetry row; fires the recorder.

    Parameters
    ----------
    rules:
        Parsed :class:`AnomalyRule` instances (or specs to parse).
    recorder:
        Optional :class:`~repro.obs.recorder.FlightRecorder`; ``None``
        records firings without dumping bundles (still countable).
    bus:
        Optional :class:`~repro.obs.stream.TelemetryBus`; each firing
        is published as an ``anomaly`` event, so live exports carry it
        and the dashboard shows it as a banner.
    """

    def __init__(self, rules, recorder=None, bus=None):
        self.rules: List[AnomalyRule] = [
            r if isinstance(r, AnomalyRule) else AnomalyRule.parse(r)
            for r in rules
        ]
        self.recorder = recorder
        self.bus = bus
        self._armed: List[bool] = [True] * len(self.rules)
        #: ``(sim_time, rule spec, observed value)`` per firing.
        self.fired: List[tuple] = []

    @property
    def triggers(self) -> int:
        return len(self.fired)

    def check(self, t: float, values: Dict[str, float]) -> int:
        """Evaluate all rules against one row; returns firings this row.

        A series absent from the row (not yet minted by the snapshot)
        never fires its rules.  Each rule re-arms once its series is
        observed on the safe side of the threshold.
        """
        fired_now = 0
        for i, rule in enumerate(self.rules):
            value = values.get(rule.series)
            if value is None:
                continue
            if rule.breached(value):
                if self._armed[i]:
                    self._armed[i] = False
                    self.fired.append((t, rule.spec, value))
                    fired_now += 1
                    if self.bus is not None:
                        self.bus.publish_event(
                            t, "anomaly",
                            {
                                "rule": rule.spec,
                                "series": rule.series,
                                "value": value,
                                "threshold": rule.threshold,
                            },
                        )
                    if self.recorder is not None:
                        self.recorder.dump(
                            f"anomaly-{rule.series}",
                            {
                                "rule": rule.spec,
                                "series": rule.series,
                                "value": value,
                                "threshold": rule.threshold,
                            },
                            sim_time=t,
                        )
            else:
                self._armed[i] = True
        return fired_now

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"AnomalyWatcher(rules={len(self.rules)}, "
            f"triggers={self.triggers})"
        )
