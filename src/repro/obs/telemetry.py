"""Telemetry time-series: periodic in-run snapshots, delta-encoded.

End-of-run aggregates (``RunReport``) answer *what happened overall*;
the telemetry table answers *when*: cache occupancy climbing after the
warmup, MAC backlog spiking during a partition, a counter that only
starts moving once the first TTR poll fires.

Storage is **columnar with delta encoding**: each column stores its
first value followed by successive differences, which collapses the
common cases (monotone counters, near-constant gauges) to small
numbers and makes the JSON export compact.  Columns may appear
mid-run (a counter minted by a late first event); earlier rows are
backfilled with zeros, and a column missing from a later sample
carries its previous value forward.

The sampler piggybacks on the simulator's own event queue.  Extra
scheduled events do not perturb determinism: tie-breaking among the
*other* events keeps their relative order (the sequence counter is
monotone), and the sample callback is a pure reader — no RNG, no
stats writes, and none of the lazily-refreshing position queries.
"""

from __future__ import annotations

import json
from typing import Any, Callable, Dict, List, Optional

__all__ = ["TelemetryTable", "TelemetrySampler"]


class TelemetryTable:
    """Columnar, delta-encoded time-series of named float samples."""

    def __init__(self):
        self._time_deltas: List[float] = []
        self._deltas: Dict[str, List[float]] = {}
        self._last: Dict[str, float] = {}
        self._last_time = 0.0
        self._rows = 0

    def __len__(self) -> int:
        return self._rows

    @property
    def columns(self) -> List[str]:
        return sorted(self._deltas)

    def append(self, t: float, values: Dict[str, float]) -> None:
        """Add one sample row at time ``t``."""
        self._time_deltas.append(t - self._last_time)
        self._last_time = t
        for name, value in values.items():
            column = self._deltas.get(name)
            if column is None:
                # Late-appearing column: zero-backfill the rows before it.
                column = self._deltas[name] = [0.0] * self._rows
                self._last[name] = 0.0
            column.append(float(value) - self._last[name])
            self._last[name] = float(value)
        for name, column in self._deltas.items():
            if len(column) <= self._rows:  # absent this row: carry forward
                column.append(0.0)
        self._rows += 1

    # -- reconstruction ---------------------------------------------------

    def times(self) -> List[float]:
        out, acc = [], 0.0
        for delta in self._time_deltas:
            acc += delta
            out.append(acc)
        return out

    def column(self, name: str) -> List[float]:
        """Decoded raw values of one column (zeros before it appeared)."""
        out, acc = [], 0.0
        for delta in self._deltas[name]:
            acc += delta
            out.append(acc)
        return out

    def rows(self) -> List[Dict[str, float]]:
        """Decoded rows as ``{"t": ..., column: value, ...}`` dicts."""
        decoded = {name: self.column(name) for name in self._deltas}
        out = []
        for i, t in enumerate(self.times()):
            row: Dict[str, float] = {"t": t}
            for name, series in sorted(decoded.items()):
                row[name] = series[i]
            out.append(row)
        return out

    def tail(self, n: int) -> List[Dict[str, float]]:
        """The last ``n`` decoded rows (flight-recorder view)."""
        return self.rows()[-n:] if n > 0 else []

    # -- persistence ------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "rows": self._rows,
            "time_deltas": list(self._time_deltas),
            "columns": {k: list(v) for k, v in sorted(self._deltas.items())},
        }

    def to_json(self, path) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_dict(), fh)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "TelemetryTable":
        table = cls()
        table._rows = int(data["rows"])
        table._time_deltas = [float(v) for v in data["time_deltas"]]
        table._last_time = sum(table._time_deltas)
        for name, deltas in data["columns"].items():
            column = [float(v) for v in deltas]
            table._deltas[name] = column
            table._last[name] = sum(column)
        return table

    @classmethod
    def from_json(cls, path) -> "TelemetryTable":
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_dict(json.load(fh))

    def to_jsonl(self, path) -> int:
        """Write a header record plus one *decoded* row per sample.

        The JSONL form trades the delta-encoded compactness of
        :meth:`to_json` for line-per-row greppability, matching the
        ``to_jsonl``/``from_jsonl`` pair every observer exporter
        shares; returns the record count.
        """
        from repro.obs.export import write_jsonl

        def records():
            yield {"record": "header", "columns": self.columns,
                   "rows": self._rows}
            for row in self.rows():
                yield {"record": "row", **row}

        return write_jsonl(path, records())

    @classmethod
    def from_jsonl(cls, path) -> "TelemetryTable":
        """Rebuild a table from a :meth:`to_jsonl` export.

        Round-trips the decoded values (re-encoding the deltas on
        append), so ``rows()`` matches the source table.
        """
        from repro.obs.export import read_jsonl

        records = read_jsonl(path)
        if not records or records[0].get("record") != "header":
            raise ValueError(f"{path}: missing telemetry header record")
        table = cls()
        for record in records[1:]:
            if record.get("record") != "row":
                raise ValueError(
                    f"{path}: unexpected record kind {record.get('record')!r}"
                )
            values = {k: float(v) for k, v in record.items()
                      if k not in ("record", "t")}
            table.append(float(record["t"]), values)
        return table

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TelemetryTable(rows={self._rows}, columns={len(self._deltas)})"


class TelemetrySampler:
    """Periodically snapshots simulator state into a :class:`TelemetryTable`.

    Parameters
    ----------
    sim:
        The :class:`~repro.sim.engine.Simulator` whose clock and queue
        drive sampling.
    collect:
        Zero-argument callable returning the ``{column: value}`` snapshot.
        It MUST be a pure reader (see module docstring).
    interval:
        Simulated seconds between samples.
    until:
        Stop rescheduling once the next sample would land past this
        time (defaults to unbounded; ``Simulator.run(until=...)`` also
        bounds it naturally).
    on_sample:
        Optional ``(t, values)`` callback fired after each row is
        appended — the anomaly-trigger hook
        (:class:`~repro.obs.anomaly.AnomalyWatcher.check`).  Like
        ``collect`` it must be a pure observer of simulation state
        (dumping a flight-recorder bundle is fine: that writes to the
        filesystem, not the simulation).
    """

    def __init__(
        self,
        sim,
        collect: Callable[[], Dict[str, float]],
        interval: float,
        until: Optional[float] = None,
        on_sample: Optional[Callable[[float, Dict[str, float]], None]] = None,
    ):
        if interval <= 0:
            raise ValueError(f"telemetry interval must be positive: {interval!r}")
        self._sim = sim
        self._collect = collect
        self.interval = float(interval)
        self.until = until
        self.on_sample = on_sample
        self.table = TelemetryTable()
        self.samples_taken = 0

    def start(self) -> None:
        """Schedule the first sample one interval from now."""
        self._sim.schedule(self.interval, self._tick)

    def _tick(self) -> None:
        values = self._collect()
        self.table.append(self._sim.now, values)
        self.samples_taken += 1
        if self.on_sample is not None:
            self.on_sample(self._sim.now, values)
        next_time = self._sim.now + self.interval
        if self.until is None or next_time <= self.until:
            self._sim.schedule(self.interval, self._tick)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TelemetrySampler(interval={self.interval}, "
            f"samples={self.samples_taken})"
        )
