"""Telemetry time-series: periodic in-run snapshots, delta-encoded.

End-of-run aggregates (``RunReport``) answer *what happened overall*;
the telemetry table answers *when*: cache occupancy climbing after the
warmup, MAC backlog spiking during a partition, a counter that only
starts moving once the first TTR poll fires.

Storage is **columnar with delta encoding**: each column stores its
first value followed by successive differences, which collapses the
common cases (monotone counters, near-constant gauges) to small
numbers and makes the JSON export compact.  Columns may appear
mid-run (a counter minted by a late first event); earlier rows are
backfilled with zeros, and a column missing from a later sample
carries its previous value forward.

The sampler piggybacks on the simulator's own event queue.  Extra
scheduled events do not perturb determinism: tie-breaking among the
*other* events keeps their relative order (the sequence counter is
monotone), and the sample callback is a pure reader — no RNG, no
stats writes, and none of the lazily-refreshing position queries.
"""

from __future__ import annotations

import json
import math
from typing import Any, Callable, Dict, List, Optional

__all__ = ["TelemetryTable", "TelemetrySampler"]


class TelemetryTable:
    """Columnar, delta-encoded time-series of named float samples."""

    def __init__(self):
        self._time_deltas: List[float] = []
        self._deltas: Dict[str, List[float]] = {}
        self._last: Dict[str, float] = {}
        self._last_time = 0.0
        self._rows = 0

    def __len__(self) -> int:
        return self._rows

    @property
    def columns(self) -> List[str]:
        return sorted(self._deltas)

    def append(self, t: float, values: Dict[str, float]) -> None:
        """Add one sample row at time ``t``.

        A NaN value is stored as a NaN *marker* delta: the row decodes
        to NaN, but the running value is left at the last finite
        observation, so one bad gauge sample never poisons the rest of
        its column (the delta chain resumes from the pre-NaN value).
        """
        self._time_deltas.append(t - self._last_time)
        self._last_time = t
        for name, value in values.items():
            column = self._deltas.get(name)
            if column is None:
                # Late-appearing column: zero-backfill the rows before it.
                column = self._deltas[name] = [0.0] * self._rows
                self._last[name] = 0.0
            value = float(value)
            if math.isnan(value):
                column.append(value)  # marker; _last keeps the finite value
            else:
                column.append(value - self._last[name])
                self._last[name] = value
        for name, column in self._deltas.items():
            if len(column) <= self._rows:  # absent this row: carry forward
                column.append(0.0)
        self._rows += 1

    # -- reconstruction ---------------------------------------------------

    def times(self) -> List[float]:
        out, acc = [], 0.0
        for delta in self._time_deltas:
            acc += delta
            out.append(acc)
        return out

    def column(self, name: str) -> List[float]:
        """Decoded raw values of one column (zeros before it appeared).

        NaN marker deltas decode to NaN for their row only; the running
        value continues from the last finite observation.
        """
        out, acc = [], 0.0
        for delta in self._deltas[name]:
            if math.isnan(delta):
                out.append(delta)
                continue
            acc += delta
            out.append(acc)
        return out

    def rows(self) -> List[Dict[str, float]]:
        """Decoded rows as ``{"t": ..., column: value, ...}`` dicts."""
        decoded = {name: self.column(name) for name in self._deltas}
        out = []
        for i, t in enumerate(self.times()):
            row: Dict[str, float] = {"t": t}
            for name, series in sorted(decoded.items()):
                row[name] = series[i]
            out.append(row)
        return out

    def tail(self, n: int) -> List[Dict[str, float]]:
        """The last ``n`` decoded rows (flight-recorder view)."""
        return self.rows()[-n:] if n > 0 else []

    # -- persistence ------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "rows": self._rows,
            "time_deltas": list(self._time_deltas),
            "columns": {k: list(v) for k, v in sorted(self._deltas.items())},
        }

    def to_json(self, path) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_dict(), fh)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "TelemetryTable":
        table = cls()
        table._rows = int(data["rows"])
        table._time_deltas = [float(v) for v in data["time_deltas"]]
        table._last_time = sum(table._time_deltas)
        for name, deltas in data["columns"].items():
            column = [float(v) for v in deltas]
            table._deltas[name] = column
            # NaN markers carry no delta: the running value is the sum
            # of the finite deltas only.
            table._last[name] = math.fsum(
                v for v in column if not math.isnan(v)
            )
        return table

    @classmethod
    def from_json(cls, path) -> "TelemetryTable":
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_dict(json.load(fh))

    def to_jsonl(self, path) -> int:
        """Write a header record plus one *decoded* row per sample.

        The JSONL form trades the delta-encoded compactness of
        :meth:`to_json` for line-per-row greppability, matching the
        ``to_jsonl``/``from_jsonl`` pair every observer exporter
        shares; returns the record count.
        """
        from repro.obs.export import write_jsonl

        def records():
            yield {"record": "header", "columns": self.columns,
                   "rows": self._rows}
            for row in self.rows():
                yield {"record": "row", **row}

        return write_jsonl(path, records())

    @classmethod
    def from_jsonl(cls, path) -> "TelemetryTable":
        """Rebuild a table from a :meth:`to_jsonl` export.

        Round-trips the decoded values (re-encoding the deltas on
        append), so ``rows()`` matches the source table.  Non-row
        records after the header — the live stream's ``anomaly`` event
        and ``end`` markers (:class:`repro.obs.stream.JsonlLiveSink`)
        — are skipped, so a finished ``--live-export`` file loads with
        the same call.
        """
        from repro.obs.export import read_jsonl

        records = read_jsonl(path)
        if not records or records[0].get("record") != "header":
            raise ValueError(f"{path}: missing telemetry header record")
        table = cls()
        for record in records[1:]:
            if record.get("record") != "row":
                continue  # event/end marker from a live export
            values = {k: float(v) for k, v in record.items()
                      if k not in ("record", "t")
                      and isinstance(v, (int, float))}
            table.append(float(record["t"]), values)
        return table

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TelemetryTable(rows={self._rows}, columns={len(self._deltas)})"


class TelemetrySampler:
    """Periodically snapshots simulator state into a :class:`TelemetryTable`.

    Parameters
    ----------
    sim:
        The :class:`~repro.sim.engine.Simulator` whose clock and queue
        drive sampling.
    collect:
        Zero-argument callable returning the ``{column: value}`` snapshot.
        It MUST be a pure reader (see module docstring).
    interval:
        Simulated seconds between samples.
    until:
        Stop rescheduling once the next sample would land past this
        time (defaults to unbounded; ``Simulator.run(until=...)`` also
        bounds it naturally).
    on_sample:
        Optional ``(t, values)`` callback fired after each row is
        appended — the anomaly-trigger hook
        (:class:`~repro.obs.anomaly.AnomalyWatcher.check`).  Like
        ``collect`` it must be a pure observer of simulation state
        (dumping a flight-recorder bundle is fine: that writes to the
        filesystem, not the simulation).
    bus:
        Optional :class:`~repro.obs.stream.TelemetryBus` each sampled
        row is published to, *before* ``on_sample`` runs — so in a live
        export an anomaly event record always follows the row that
        triggered it.
    """

    def __init__(
        self,
        sim,
        collect: Callable[[], Dict[str, float]],
        interval: float,
        until: Optional[float] = None,
        on_sample: Optional[Callable[[float, Dict[str, float]], None]] = None,
        bus=None,
    ):
        if interval <= 0:
            raise ValueError(f"telemetry interval must be positive: {interval!r}")
        self._sim = sim
        self._collect = collect
        self.interval = float(interval)
        self.until = until
        self.on_sample = on_sample
        self.bus = bus
        self.table = TelemetryTable()
        self.samples_taken = 0
        self._last_sample_time: Optional[float] = None

    def start(self) -> None:
        """Schedule the first sample one interval from now."""
        self._sim.schedule(self.interval, self._tick)

    def _sample(self) -> None:
        values = self._collect()
        now = self._sim.now
        self.table.append(now, values)
        self.samples_taken += 1
        self._last_sample_time = now
        if self.bus is not None:
            self.bus.publish(now, values)
        if self.on_sample is not None:
            self.on_sample(now, values)

    def _tick(self) -> None:
        self._sample()
        next_time = self._sim.now + self.interval
        if self.until is None or next_time <= self.until:
            self._sim.schedule(self.interval, self._tick)

    def finalize(self) -> bool:
        """Take one last sample at engine-stop time, if the clock moved.

        A run shorter than the sample interval would otherwise finish
        with an *empty* table (the first tick never fires); a run whose
        duration is not an interval multiple would silently drop its
        tail.  Called by the engine after the event loop drains; never
        reschedules.  Returns True when a row was added — a no-op when
        the last periodic tick already landed exactly at stop time.
        """
        now = self._sim.now
        if self._last_sample_time is not None and now <= self._last_sample_time:
            return False
        self._sample()
        return True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TelemetrySampler(interval={self.interval}, "
            f"samples={self.samples_taken})"
        )
