"""Deterministic observability for PReCinCt runs.

Three pillars, all pure observers of the simulation (no RNG draws, no
stat writes, no position refreshes — enabling any of them leaves the
golden event-log and report digests byte-identical):

* :mod:`repro.obs.tracer` — per-request causal traces with typed,
  sim-time spans and fault tags; JSONL and Chrome trace-event export;
* :mod:`repro.obs.sampling` — head-based probabilistic trace sampling
  on a dedicated observer RNG stream (bounded tracer memory for
  million-request runs, still digest-neutral);
* :mod:`repro.obs.tracediff` — cross-run trace diffing: align two
  JSONL exports, rank per-phase latency regressions, attribute faults;
* :mod:`repro.obs.telemetry` — periodic columnar time-series of
  counters, cache occupancy, and MAC backlog, delta-encoded;
* :mod:`repro.obs.profile` — wall-clock self-time of engine/routing/
  cache hot paths (reported, but excluded from digests);
* :mod:`repro.obs.recorder` — flight-recorder bundles dumped on
  invariant violations, unserved requests, and audit divergence;
* :mod:`repro.obs.anomaly` — declarative telemetry threshold rules
  that fire flight-recorder bundles mid-run;
* :mod:`repro.obs.stream` — the live :class:`TelemetryBus`: fan-out of
  each sampled row to ring-buffer subscribers, an append-per-sample
  JSONL live export, and a Prometheus-style metrics snapshot;
* :mod:`repro.obs.dashboard` — the ``--watch`` terminal dashboard
  (in-place ANSI repaint, plain-line fallback) fed by the bus;
* :mod:`repro.obs.watch` — ``repro watch``: follow or replay a live
  export through the same dashboard;
* :mod:`repro.obs.observers` — the :class:`Observers` composition
  object: one ``attach(engine)`` wiring for every pillar (including
  the span-level :class:`~repro.energy.attribution.EnergyAttributor`);
* :mod:`repro.obs.export` — the shared ``to_jsonl``/``from_jsonl``
  path handling all exporters delegate to.

See ``docs/OBSERVABILITY.md`` for the user-facing tour.
"""

from repro.obs.anomaly import AnomalyRule, AnomalyWatcher
from repro.obs.dashboard import Dashboard
from repro.obs.export import export_path, read_jsonl, write_jsonl
from repro.obs.observers import Observers
from repro.obs.profile import NULL_PROFILER, PerfProfiler
from repro.obs.recorder import FlightRecorder
from repro.obs.sampling import TraceSampler, make_sampler
from repro.obs.stream import (
    JsonlLiveSink,
    MetricsSnapshotWriter,
    RingSubscriber,
    TelemetryBus,
)
from repro.obs.telemetry import TelemetrySampler, TelemetryTable
from repro.obs.tracediff import TraceDiff, diff_files, diff_traces, load_traces
from repro.obs.tracer import Span, Trace, Tracer
from repro.obs.watch import WatchResult, watch_file

__all__ = [
    "AnomalyRule",
    "AnomalyWatcher",
    "Dashboard",
    "FlightRecorder",
    "JsonlLiveSink",
    "MetricsSnapshotWriter",
    "NULL_PROFILER",
    "Observers",
    "PerfProfiler",
    "RingSubscriber",
    "Span",
    "TelemetryBus",
    "Trace",
    "TraceDiff",
    "TraceSampler",
    "Tracer",
    "TelemetrySampler",
    "TelemetryTable",
    "WatchResult",
    "diff_files",
    "diff_traces",
    "export_path",
    "load_traces",
    "make_sampler",
    "read_jsonl",
    "write_jsonl",
]
