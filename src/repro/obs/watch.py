"""``repro watch`` — follow or replay a telemetry JSONL live export.

A :class:`~repro.obs.stream.JsonlLiveSink` file is append-only and
flushed per record, so it can be consumed *while the producing run is
still going* (``repro run --watch --live-export live.jsonl`` in one
terminal, ``repro watch live.jsonl --follow`` in another), or scrubbed
after the fact.  :func:`watch_file` reads the export incrementally and
feeds an in-process :class:`~repro.obs.stream.TelemetryBus` +
:class:`~repro.obs.dashboard.Dashboard`, so the live view and the
replay view are the same code path.

Record grammar (one JSON object per line):

* ``{"record": "header", ...}`` — file preamble; ignored beyond
  validation.
* ``{"record": "row", "t": ..., <column>: <value>, ...}`` — one
  telemetry sample.
* ``{"record": "end", "rows": N}`` — the producing run finished; a
  follower stops here.
* anything else (e.g. ``{"record": "anomaly", ...}``) — an event,
  republished to the bus and rendered as a dashboard banner.

In follow mode the reader polls for new complete lines (a partially
written trailing line is left for the next poll — the producer flushes
whole records, but the filesystem makes no atomicity promise) and stops
on the ``end`` record, ``timeout`` wall seconds of silence, or Ctrl-C.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from typing import Optional

from repro.obs.dashboard import Dashboard
from repro.obs.stream import TelemetryBus

__all__ = ["WatchResult", "watch_file"]


@dataclass
class WatchResult:
    """What one :func:`watch_file` pass consumed."""

    rows: int = 0
    events: int = 0
    #: True when the export's ``end`` record was seen (run finished).
    ended: bool = False
    #: True when follow mode gave up after ``timeout`` quiet seconds.
    timed_out: bool = False


def watch_file(
    path,
    *,
    follow: bool = False,
    interval: float = 1.0,
    mode: str = "auto",
    out=None,
    timeout: Optional[float] = None,
    poll: float = 0.25,
    clock=time.monotonic,
    sleep=time.sleep,
) -> WatchResult:
    """Render a telemetry JSONL export as a live dashboard.

    Parameters
    ----------
    path:
        The export to read (a ``--live-export`` file, or any
        :meth:`TelemetryTable.to_jsonl` export).
    follow:
        Keep polling for new records after EOF (``tail -f``) until the
        ``end`` record, ``timeout`` quiet wall-seconds, or Ctrl-C;
        False replays the current contents and returns at EOF.
    interval / mode / out:
        Forwarded to :class:`~repro.obs.dashboard.Dashboard` — wall
        seconds between repaints, ``auto``/``ansi``/``plain``, output
        stream.
    timeout:
        Follow mode only: give up after this many wall seconds without
        a new record (None = wait forever).
    poll:
        Follow mode poll period (wall seconds).
    clock / sleep:
        Wall-clock hooks, injected by tests.
    """
    bus = TelemetryBus()
    dash = Dashboard(
        bus, duration=None, interval=interval, mode=mode, out=out,
        clock=clock, title=f"repro watch {path}",
    )
    result = WatchResult()
    last_progress = clock()
    try:
        with open(path, "r", encoding="utf-8") as fh:
            lineno = 0
            while True:
                pos = fh.tell()
                line = fh.readline()
                if not line or (follow and not line.endswith("\n")):
                    # EOF, or a torn trailing line mid-append.
                    if not follow:
                        break
                    if (
                        timeout is not None
                        and clock() - last_progress >= timeout
                    ):
                        result.timed_out = True
                        break
                    fh.seek(pos)
                    sleep(poll)
                    continue
                last_progress = clock()
                lineno += 1
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except ValueError as exc:
                    raise ValueError(
                        f"{path}:{lineno}: malformed JSONL record: {exc}"
                    ) from None
                if not isinstance(record, dict):
                    raise ValueError(
                        f"{path}:{lineno}: not a JSON object record"
                    )
                kind = record.get("record")
                if kind == "header":
                    continue
                if kind == "row":
                    t = float(record.get("t", 0.0))
                    values = {
                        k: float(v) for k, v in record.items()
                        if k not in ("record", "t")
                        and isinstance(v, (int, float))
                    }
                    bus.publish(t, values)
                    result.rows += 1
                elif kind == "end":
                    result.ended = True
                    break
                else:
                    # Event record (anomaly firing, future kinds).
                    t = float(record.get("t", 0.0))
                    payload = {
                        k: v for k, v in record.items()
                        if k not in ("record", "t")
                    }
                    bus.publish_event(t, str(kind), payload)
                    result.events += 1
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        pass
    finally:
        dash.close()
    return result
