"""Flight recorder: post-mortem bundles for anomalous runs.

When something goes wrong mid-run — an invariant violation at a fault
boundary, a request that timed out unserved, a crashed event callback,
or an audit digest divergence — the interesting state is about to be
garbage-collected with the run.  The flight recorder snapshots it
first: the tail of the event log, the offending request's full trace,
the telemetry tail, and a context record, written as one bundle
directory per incident.

Bundles are named ``<seq>-<reason>`` (a per-run counter, not wall
clock) so repeated runs of the same failing scenario produce the same
file set.  Dumping is bounded by ``max_dumps`` — a run failing ten
thousand requests should not write ten thousand bundles.

The recorder only *reads* simulator state and writes to the host
filesystem, so an armed recorder that never fires is invisible to the
determinism digests; one that does fire still only observes.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

__all__ = ["FlightRecorder"]


class FlightRecorder:
    """Dumps incident bundles into a directory tree.

    Parameters
    ----------
    bundle_dir:
        Root directory; each incident becomes a subdirectory.
    eventlog, tracer, telemetry:
        Optional live sources; whichever are present are included in
        every bundle.
    last_events:
        Event-log tail length per bundle.
    max_dumps:
        Incident cap for the run (further triggers are counted but
        not written).
    """

    def __init__(
        self,
        bundle_dir: Union[str, Path],
        eventlog=None,
        tracer=None,
        telemetry=None,
        last_events: int = 200,
        max_dumps: int = 5,
    ):
        self.bundle_dir = Path(bundle_dir)
        self.eventlog = eventlog
        self.tracer = tracer
        self.telemetry = telemetry
        self.last_events = last_events
        self.max_dumps = max_dumps
        self.dumps_written: List[Path] = []
        #: Manifest dicts of the written bundles, in write order (the
        #: in-memory mirror of each bundle's ``manifest.json``).
        self.manifests: List[Dict[str, Any]] = []
        self.triggers = 0

    def dump(
        self,
        reason: str,
        context: Optional[Dict[str, Any]] = None,
        trace=None,
        sim_time: Optional[float] = None,
    ) -> Optional[Path]:
        """Write one incident bundle; returns its path (None if capped).

        ``trace`` is the offending request's :class:`~repro.obs.tracer.Trace`
        when the caller has one; otherwise the bundle still carries the
        event-log and telemetry tails.
        """
        self.triggers += 1
        if len(self.dumps_written) >= self.max_dumps:
            return None
        slug = "".join(
            c if c.isalnum() or c in "-_" else "-" for c in reason
        ).strip("-") or "incident"
        bundle = self.bundle_dir / f"{len(self.dumps_written):03d}-{slug}"
        bundle.mkdir(parents=True, exist_ok=True)

        manifest: Dict[str, Any] = {
            "reason": reason,
            "sim_time": sim_time,
            "context": context or {},
            "contents": [],
        }

        if self.eventlog is not None:
            events = list(self.eventlog)[-self.last_events:]
            with open(bundle / "events.jsonl", "w", encoding="utf-8") as fh:
                for event in events:
                    fh.write(json.dumps(
                        {"time": event.time, "kind": event.kind,
                         "fields": event.fields},
                        sort_keys=True, default=repr))
                    fh.write("\n")
            manifest["contents"].append("events.jsonl")
            manifest["eventlog_dropped"] = self.eventlog.dropped

        if trace is not None:
            with open(bundle / "trace.json", "w", encoding="utf-8") as fh:
                json.dump(trace.to_dict(), fh, indent=2, sort_keys=True,
                          default=repr)
            manifest["contents"].append("trace.json")

        if self.telemetry is not None and len(self.telemetry):
            with open(bundle / "telemetry_tail.json", "w",
                      encoding="utf-8") as fh:
                json.dump(self.telemetry.tail(50), fh, indent=2)
            manifest["contents"].append("telemetry_tail.json")

        with open(bundle / "manifest.json", "w", encoding="utf-8") as fh:
            json.dump(manifest, fh, indent=2, sort_keys=True, default=repr)

        manifest["bundle"] = str(bundle)
        self.manifests.append(manifest)
        self.dumps_written.append(bundle)
        return bundle

    # -- exporters --------------------------------------------------------

    def to_jsonl(self, path) -> int:
        """Write one record per bundle manifest; returns the count.

        The single-file index of a run's incidents — greppable without
        walking the bundle tree.
        """
        from repro.obs.export import write_jsonl

        return write_jsonl(path, self.manifests)

    @staticmethod
    def from_jsonl(path) -> List[Dict[str, Any]]:
        """Read a manifest index back as a list of manifest dicts."""
        from repro.obs.export import read_jsonl

        records = read_jsonl(path)
        for i, record in enumerate(records, start=1):
            if "reason" not in record or "contents" not in record:
                raise ValueError(f"{path}:{i}: not a bundle manifest record")
        return records

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FlightRecorder(dir={str(self.bundle_dir)!r}, "
            f"dumps={len(self.dumps_written)}, triggers={self.triggers})"
        )
