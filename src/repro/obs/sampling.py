"""Head-based probabilistic trace sampling.

Million-request runs cannot afford a :class:`~repro.obs.tracer.Trace`
per request: even with the completed-trace ring and the per-trace span
cap, tracing every request costs memory and export time linear in the
request count.  **Head-based sampling** makes the decision once, when
the request is issued (the "head" of the trace), so either a request's
*entire* causal record is kept or none of it is — there are no
half-traces.

Determinism and digest neutrality
---------------------------------
The sampler draws exactly one uniform variate per decision from a
**dedicated observer RNG stream** (``rngs.get("obs")``).  Stream
independence in :class:`~repro.sim.rng.RngRegistry` guarantees those
draws can never perturb mobility, workload, MAC jitter, or fault
injection, so a sampled run is byte-for-byte digest-identical to the
unsampled run — the test suite asserts this against the golden digests
for rates 0, 0.25, and 1.0.

Because the simulation itself is deterministic, the same seed and rate
always admit the same set of traces.  Moreover the decision for trace
*n* compares the *same* ``n``-th variate against the rate, so the
admitted sets are **nested across rates**: every trace sampled at rate
0.25 is also sampled at rate 0.75.

The edge rates skip the RNG entirely (rate 0 admits nothing, rate 1
admits everything), which keeps ``trace_sample_rate=1.0`` — the default
— draw-free and bit-identical to pre-sampling behaviour.
"""

from __future__ import annotations

from typing import Optional

__all__ = ["TraceSampler", "make_sampler"]


class TraceSampler:
    """Decides, per trace head, whether to record the trace.

    Parameters
    ----------
    rate:
        Probability in ``[0, 1]`` that a trace is admitted.
    rng:
        ``numpy.random.Generator`` supplying the uniform draws.  Required
        for fractional rates; rates 0 and 1 never draw and may omit it.
    """

    def __init__(self, rate: float, rng=None):
        rate = float(rate)
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"sample rate must be in [0, 1], got {rate}")
        if 0.0 < rate < 1.0 and rng is None:
            raise ValueError(
                f"a fractional sample rate ({rate}) needs an rng stream"
            )
        self.rate = rate
        self._rng = rng
        self.admitted = 0
        self.rejected = 0

    def sample(self) -> bool:
        """One head-based decision; counts it either way."""
        if self.rate >= 1.0:
            keep = True
        elif self.rate <= 0.0:
            keep = False
        else:
            keep = bool(self._rng.random() < self.rate)
        if keep:
            self.admitted += 1
        else:
            self.rejected += 1
        return keep

    @property
    def decisions(self) -> int:
        return self.admitted + self.rejected

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TraceSampler(rate={self.rate}, admitted={self.admitted}, "
            f"rejected={self.rejected})"
        )


def make_sampler(rate: float, rng=None) -> Optional[TraceSampler]:
    """A sampler for ``rate``, or None when sampling is a no-op (rate 1).

    Returning None for the default rate keeps the tracer's hot path
    free of any sampler call in the common record-everything case.
    """
    if rate >= 1.0:
        return None
    return TraceSampler(rate, rng=rng)
