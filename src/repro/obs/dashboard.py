"""Live terminal dashboard on the telemetry stream (``repro run --watch``).

Renders the rows a :class:`~repro.obs.stream.TelemetryBus` publishes —
byte hit ratio, per-region cache fill, MAC backlog, ``resilience.*``
breaker/suspicion gauges, anomaly-rule arm/fire state, and event-rate /
ETA progress — as an in-place-refreshed ANSI layout.  No curses: the
repaint is a plain cursor-home (``\\x1b[H``) redraw with every line
``\\x1b[K``-cleared, which works in any VT100-ish terminal and degrades
gracefully.

Two modes, resolved from ``mode=``:

* ``"ansi"`` — the full layout, repainted in place.  Chosen by
  ``"auto"`` when the output stream is a TTY, ``$TERM`` is not
  ``dumb``, and ``$NO_COLOR`` is unset.
* ``"plain"`` — the dumb-terminal / CI-safe fallback: one summary line
  per refresh (plus one line per anomaly firing), no control codes at
  all.  ``repro run --watch --no-color`` forces it.

Rendering is throttled by *wall-clock* time (``interval`` seconds
between repaints), so a fast simulation does not melt the terminal and
a slow one still shows every sample.  The dashboard is a pure consumer
of published rows: it never touches the simulation, so ``--watch`` is
digest-neutral like every other observer (asserted by the golden-digest
suite).
"""

from __future__ import annotations

import math
import os
import time
from typing import Dict, List, Optional

__all__ = ["Dashboard", "resolve_mode", "sparkline", "bar"]

#: Eight-level block characters for sparklines (U+2581..U+2588).
_SPARK = "▁▂▃▄▅▆▇█"

# SGR fragments (ansi mode only; plain mode emits no control codes).
_RESET = "\x1b[0m"
_BOLD = "\x1b[1m"
_DIM = "\x1b[2m"
_RED = "\x1b[31m"
_GREEN = "\x1b[32m"
_YELLOW = "\x1b[33m"
_CYAN = "\x1b[36m"


def resolve_mode(mode: str, out) -> str:
    """Resolve ``"auto"`` to ``"ansi"`` or ``"plain"`` for stream ``out``."""
    if mode not in ("auto", "ansi", "plain"):
        raise ValueError(
            f"dashboard mode must be 'auto', 'ansi', or 'plain', got {mode!r}"
        )
    if mode != "auto":
        return mode
    if os.environ.get("NO_COLOR"):
        return "plain"
    if os.environ.get("TERM", "") == "dumb":
        return "plain"
    isatty = getattr(out, "isatty", None)
    return "ansi" if (isatty is not None and isatty()) else "plain"


def sparkline(values: List[float], width: int = 24) -> str:
    """Render the last ``width`` values as block-character bars.

    NaN samples (a gauge that was undefined that row) render as a
    space and are excluded from the scale.
    """
    tail = values[-width:]
    if not tail:
        return ""
    finite = [v for v in tail if not math.isnan(v)]
    if not finite:
        return " " * len(tail)
    lo, hi = min(finite), max(finite)
    span = hi - lo
    if span <= 0:
        return "".join(" " if math.isnan(v) else _SPARK[3] for v in tail)
    return "".join(
        " " if math.isnan(v)
        else _SPARK[min(int((v - lo) / span * 8), 7)]
        for v in tail
    )


def bar(fraction: float, width: int = 20) -> str:
    """A ``[####....]`` fill bar clamped to [0, 1]."""
    fraction = min(max(fraction, 0.0), 1.0)
    filled = int(round(fraction * width))
    return "#" * filled + "." * (width - filled)


def _fmt_seconds(s: float) -> str:
    if s >= 3600:
        return f"{s / 3600:.1f}h"
    if s >= 60:
        return f"{s / 60:.1f}m"
    return f"{s:.0f}s"


class Dashboard:
    """In-terminal live view of one telemetry stream.

    Parameters
    ----------
    bus:
        The :class:`~repro.obs.stream.TelemetryBus` to subscribe to.
    duration:
        Total virtual duration of the run (drives the progress bar and
        ETA); ``None`` (e.g. ``repro watch`` on an export of unknown
        length) hides both.
    interval:
        Minimum wall-clock seconds between repaints.
    mode:
        ``"auto"`` / ``"ansi"`` / ``"plain"`` (see module docstring).
    out:
        Output stream; defaults to ``sys.stderr`` so ``repro run``'s
        machine-readable stdout stays clean.
    anomaly:
        Optional :class:`~repro.obs.anomaly.AnomalyWatcher` whose rule
        arm/fire state is shown; firings also arrive as bus events.
    history:
        Ring length of the sparkline window.
    clock:
        Wall-clock source (injected by tests).
    """

    def __init__(
        self,
        bus,
        *,
        duration: Optional[float] = None,
        interval: float = 1.0,
        mode: str = "auto",
        out=None,
        anomaly=None,
        history: int = 120,
        clock=time.monotonic,
        title: str = "repro live",
    ):
        if interval <= 0:
            raise ValueError(f"dashboard interval must be positive: {interval!r}")
        if out is None:
            import sys

            out = sys.stderr
        self.out = out
        self.mode = resolve_mode(mode, out)
        self.duration = duration
        self.interval = float(interval)
        self.anomaly = anomaly
        self.title = title
        self._clock = clock
        self._sub = bus.subscribe(history)
        bus.add_listener(self._on_row)
        self._last_render: Optional[float] = None
        self._pace: List[tuple] = []  # (wall, sim) pairs for ETA
        self._banners_shown = 0
        self.renders = 0
        self._closed = False
        self._painted = False

    # -- bus hook ---------------------------------------------------------

    def _on_row(self, t: float, values: Dict[str, float]) -> None:
        now = self._clock()
        self._pace.append((now, t))
        if len(self._pace) > 32:
            del self._pace[0]
        if (
            self._last_render is not None
            and now - self._last_render < self.interval
        ):
            return
        self._last_render = now
        self.render()

    # -- rendering --------------------------------------------------------

    def render(self) -> None:
        """Repaint (ansi) or print one summary line (plain)."""
        self.renders += 1
        if self.mode == "ansi":
            self._render_ansi()
        else:
            self._render_plain()

    def close(self) -> None:
        """Final repaint + terminal restore.  Idempotent."""
        if self._closed:
            return
        self._closed = True
        if len(self._sub):
            self.render()
        if self.mode == "ansi" and self._painted:
            self.out.write("\x1b[?25h\n")  # show cursor, leave the frame
            self.out.flush()

    def _eta(self, t: float) -> Optional[float]:
        """Wall-seconds until ``duration`` at the observed sim pace."""
        if self.duration is None or len(self._pace) < 2:
            return None
        (w0, s0), (w1, s1) = self._pace[0], self._pace[-1]
        if w1 <= w0 or s1 <= s0:
            return None
        pace = (s1 - s0) / (w1 - w0)  # sim seconds per wall second
        return max(self.duration - t, 0.0) / pace if pace > 0 else None

    def _event_rate(self) -> Optional[float]:
        """Engine events per wall second over the sparkline window."""
        rows = list(self._sub.rows)
        if len(self._pace) < 2 or len(rows) < 2:
            return None
        (w0, _), (w1, _) = self._pace[0], self._pace[-1]
        window = [v.get("engine.events") for _, v in rows]
        window = [v for v in window if v is not None]
        if len(window) < 2 or w1 <= w0:
            return None
        return max(window[-1] - window[0], 0.0) / (w1 - w0)

    # -- plain (dumb-terminal / CI) mode ----------------------------------

    def _render_plain(self) -> None:
        t, values = self._sub.rows[-1]
        parts = [f"[t={t:8.1f}s"]
        if self.duration:
            parts.append(f" {100.0 * t / self.duration:3.0f}%]")
        else:
            parts.append("]")
        issued = values.get("request.issued")
        if issued is not None:
            parts.append(f" req={issued:.0f}")
        bhr = values.get("request.byte_hit_ratio")
        if bhr is not None:
            parts.append(f" bhr={bhr:.3f}")
        parts.append(f" mac={values.get('mac.backlog_total_s', 0.0):.3f}s")
        breakers = values.get("resilience.breakers_open")
        if breakers is not None:
            parts.append(f" breakers={breakers:.0f}")
        if self.anomaly is not None:
            parts.append(f" anomalies={self.anomaly.triggers}")
        rate = self._event_rate()
        if rate is not None:
            parts.append(f" ev/s={rate:,.0f}")
        eta = self._eta(t)
        if eta is not None:
            parts.append(f" eta={_fmt_seconds(eta)}")
        self.out.write("".join(parts) + "\n")
        # One line per not-yet-shown anomaly banner.
        events = list(self._sub.events)
        for et, kind, payload in events[self._banners_shown:]:
            rule = payload.get("rule", kind)
            value = payload.get("value")
            suffix = f" (observed {value:g})" if value is not None else ""
            self.out.write(f"ANOMALY t={et:.1f}s {rule}{suffix}\n")
        self._banners_shown = len(events)
        self.out.flush()

    # -- ansi mode --------------------------------------------------------

    def _render_ansi(self) -> None:
        t, values = self._sub.rows[-1]
        lines = self._frame_lines(t, values)
        if not self._painted:
            # First paint: clear once, hide the cursor.
            self.out.write("\x1b[2J\x1b[?25l")
            self._painted = True
        buf = ["\x1b[H"]
        for line in lines:
            buf.append(line)
            buf.append("\x1b[K\n")  # clear to end of line: no stale tails
        buf.append("\x1b[J")  # clear anything below the frame
        self.out.write("".join(buf))
        self.out.flush()

    def _frame_lines(self, t: float, values: Dict[str, float]) -> List[str]:
        lines: List[str] = []
        # -- header: progress, event rate, ETA ----------------------------
        head = f"{_BOLD}{_CYAN}{self.title}{_RESET}  t={t:.1f}s"
        if self.duration:
            frac = t / self.duration
            head += (
                f" / {self.duration:.0f}s  [{bar(frac)}] {100 * frac:3.0f}%"
            )
        rate = self._event_rate()
        if rate is not None:
            head += f"  {rate:,.0f} ev/s"
        eta = self._eta(t)
        if eta is not None:
            head += f"  ETA {_fmt_seconds(eta)}"
        lines.append(head)
        lines.append("")

        # -- requests / hit ratios ----------------------------------------
        issued = values.get("request.issued", 0.0)
        failed = values.get("request.failed", 0.0)
        served = values.get("request.served", 0.0)
        bhr = values.get("request.byte_hit_ratio", 0.0)
        lines.append(
            f"{_BOLD}requests{_RESET}   issued {issued:8.0f}   "
            f"served {served:8.0f}   failed {failed:6.0f}"
        )
        lines.append(
            f"  byte hit ratio {bhr:6.3f}  "
            f"{_GREEN}{sparkline(self._sub.series('request.byte_hit_ratio'))}"
            f"{_RESET}"
        )
        lines.append("")

        # -- per-region cache fill ----------------------------------------
        regions = sorted(
            (k for k in values if k.startswith("cache.region")
             and k.endswith(".bytes")),
            key=lambda k: int(k[len("cache.region"):-len(".bytes")]),
        )
        if regions:
            lines.append(f"{_BOLD}cache fill (bytes per region){_RESET}")
            peak = max(values[k] for k in regions) or 1.0
            for key in regions[:12]:
                rid = key[len("cache.region"):-len(".bytes")]
                entries = values.get(f"cache.region{rid}.entries", 0.0)
                lines.append(
                    f"  region {rid:>3}  [{bar(values[key] / peak, 16)}] "
                    f"{values[key]:>12,.0f} B  {entries:5.0f} items"
                )
            if len(regions) > 12:
                lines.append(f"  {_DIM}... {len(regions) - 12} more{_RESET}")
            imbalance = values.get("region.occupancy_imbalance")
            if imbalance is not None:
                lines.append(f"  occupancy imbalance {imbalance:5.2f}")
            lines.append("")

        # -- MAC backlog ---------------------------------------------------
        backlog = values.get("mac.backlog_total_s", 0.0)
        backlog_max = values.get("mac.backlog_max_s", 0.0)
        lines.append(
            f"{_BOLD}mac{_RESET}        backlog {backlog:8.3f}s   "
            f"max {backlog_max:8.3f}s  "
            f"{_YELLOW}{sparkline(self._sub.series('mac.backlog_total_s'))}"
            f"{_RESET}"
        )

        # -- resilience gauges --------------------------------------------
        if "resilience.breakers_open" in values:
            lines.append(
                f"{_BOLD}resilience{_RESET} breakers open "
                f"{values['resilience.breakers_open']:3.0f}   retries "
                f"inflight {values.get('resilience.retries_inflight', 0.0):3.0f}"
                f"   depth {values.get('resilience.retry_depth', 0.0):2.0f}"
            )
            suspicions = sorted(
                k for k in values if k.startswith("resilience.suspicion.")
            )
            hot = [
                (k.rsplit("region", 1)[-1], values[k])
                for k in suspicions if values[k] > 0
            ]
            if hot:
                worst = sorted(hot, key=lambda kv: -kv[1])[:6]
                lines.append(
                    "  suspicion  " + "  ".join(
                        f"r{rid}={score:.2f}" for rid, score in worst
                    )
                )
        lines.append("")

        # -- anomaly rules: arm/fire state + banners ----------------------
        if self.anomaly is not None and self.anomaly.rules:
            lines.append(f"{_BOLD}anomaly rules{_RESET}")
            for i, rule in enumerate(self.anomaly.rules):
                armed = self.anomaly._armed[i]
                state = (
                    f"{_GREEN}armed{_RESET}" if armed
                    else f"{_RED}FIRED{_RESET}"
                )
                lines.append(f"  {rule.spec:<32} {state}")
        banners = list(self._sub.events)[-4:]
        for et, kind, payload in banners:
            rule = payload.get("rule", kind)
            value = payload.get("value")
            suffix = f" (observed {value:g})" if value is not None else ""
            lines.append(
                f"{_RED}{_BOLD}!! t={et:.1f}s {rule}{suffix}{_RESET}"
            )
        return lines

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Dashboard(mode={self.mode!r}, renders={self.renders})"
