"""Shared path handling and JSONL I/O for every observer exporter.

Tracer, TelemetryTable, EnergyLedger, and FlightRecorder all speak the
same ``to_jsonl``/``from_jsonl`` pair; the path normalization they need
(expand ``~``, create missing parent directories, reject directories
with a clear error instead of failing inside ``open``) lives here once
instead of being copied into each exporter.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Iterable, List

__all__ = ["export_path", "write_jsonl", "read_jsonl"]


def export_path(path) -> Path:
    """Normalize an export target: expand ``~``, create parents.

    Accepts str or ``os.PathLike``; a bare filename resolves against
    the working directory.  Rejects directories early with a clear
    error instead of failing inside ``open``.
    """
    out = Path(path).expanduser()
    if out.is_dir():
        raise IsADirectoryError(f"export path is a directory: {out}")
    out.parent.mkdir(parents=True, exist_ok=True)
    return out


def write_jsonl(path, records: Iterable[Dict[str, Any]]) -> int:
    """Write one JSON object per record; returns the record count.

    Zero records produce a valid empty file (an empty export still
    round-trips and diffs cleanly against any other).
    """
    n = 0
    with open(export_path(path), "w", encoding="utf-8") as fh:
        for record in records:
            fh.write(json.dumps(record, sort_keys=True, default=repr))
            fh.write("\n")
            n += 1
    return n


def read_jsonl(path) -> List[Dict[str, Any]]:
    """Read a JSONL export back as a list of dicts.

    Blank lines are skipped; a non-object line raises ``ValueError``
    naming the offending ``path:lineno``.
    """
    src = Path(path).expanduser()
    records: List[Dict[str, Any]] = []
    with open(src, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            if not isinstance(record, dict):
                raise ValueError(
                    f"{src}:{lineno}: not a JSON object record"
                )
            records.append(record)
    return records
