"""One composition object for every observer subsystem.

Before this module, each observer (tracer, telemetry sampler, perf
profiler, flight recorder) was wired into
:class:`~repro.core.network.PReCinCtNetwork` by its own ad-hoc block of
duck-typed hook assignments.  :class:`Observers` replaces those with a
single declarative surface and one :meth:`attach` entry point::

    from repro.api import Observers, SimulationConfig
    from repro.core.network import PReCinCtNetwork

    obs = Observers(tracing=True, energy_attribution=True,
                    anomaly_rules=("mac.backlog_max_s>5",))
    net = PReCinCtNetwork(SimulationConfig(), observers=obs)
    net.run()
    print(obs.energy.by_phase())

Every option defaults to ``None`` — *inherit the setting from the
engine's* :class:`~repro.config.SimulationConfig` — so ``Observers()``
reproduces exactly what the config flags ask for, and an explicit
``True``/``False``/value overrides the config without rebuilding it.

All attached subsystems are pure observers (no RNG from simulation
streams, no stat writes, no lazily-refreshing position queries), so a
run with any combination attached is digest-identical to the bare run
— the invariant the golden-digest tests pin.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

__all__ = ["Observers"]

#: Sentinel distinguishing "not given" from an explicit ``None``.
_INHERIT = None


class Observers:
    """Composition of all observer subsystems for one simulation run.

    Parameters (``None`` = inherit from the engine's config):

    tracing / trace_sample_rate:
        Request tracing (:class:`~repro.obs.tracer.Tracer`) and its
        head-based sample rate.
    telemetry / telemetry_interval:
        Periodic state snapshots
        (:class:`~repro.obs.telemetry.TelemetrySampler`).
    profiling:
        Wall-clock section profiling
        (:class:`~repro.obs.profile.PerfProfiler`).
    recorder_dir / recorder_events / recorder_max_dumps:
        Flight-recorder bundles
        (:class:`~repro.obs.recorder.FlightRecorder`).
    energy_attribution:
        Span-level energy attribution
        (:class:`~repro.energy.attribution.EnergyAttributor`).
    anomaly_rules:
        Telemetry threshold rules
        (:class:`~repro.obs.anomaly.AnomalyWatcher`); implies nothing
        by itself — telemetry must be on for rules to be checked.
    stream / live_export / metrics_snapshot:
        Live streaming (:class:`~repro.obs.stream.TelemetryBus`):
        ``stream=True`` arms the bus; ``live_export=PATH`` attaches an
        append-per-sample JSONL sink
        (:class:`~repro.obs.stream.JsonlLiveSink`);
        ``metrics_snapshot=PATH`` attaches the Prometheus-style
        snapshot writer.  Either sink (or the dashboard) implies the
        bus, and any of them implies the telemetry sampler.
    dashboard / dashboard_mode / watch_interval / dashboard_out:
        Live terminal dashboard
        (:class:`~repro.obs.dashboard.Dashboard`): render mode
        (``auto``/``ansi``/``plain``), minimum wall seconds between
        repaints, and the output stream (defaults to stderr; tests
        inject a ``StringIO``).
    """

    def __init__(
        self,
        *,
        tracing: Optional[bool] = _INHERIT,
        trace_sample_rate: Optional[float] = _INHERIT,
        telemetry: Optional[bool] = _INHERIT,
        telemetry_interval: Optional[float] = _INHERIT,
        profiling: Optional[bool] = _INHERIT,
        recorder_dir=_INHERIT,
        recorder_events: Optional[int] = _INHERIT,
        recorder_max_dumps: Optional[int] = _INHERIT,
        energy_attribution: Optional[bool] = _INHERIT,
        anomaly_rules: Optional[Sequence[Union[str, object]]] = _INHERIT,
        stream: Optional[bool] = _INHERIT,
        live_export=_INHERIT,
        metrics_snapshot=_INHERIT,
        dashboard: Optional[bool] = _INHERIT,
        dashboard_mode: Optional[str] = _INHERIT,
        watch_interval: Optional[float] = _INHERIT,
        dashboard_out=_INHERIT,
    ):
        self._opts = {
            "tracing": tracing,
            "trace_sample_rate": trace_sample_rate,
            "telemetry": telemetry,
            "telemetry_interval": telemetry_interval,
            "profiling": profiling,
            "recorder_dir": recorder_dir,
            "recorder_events": recorder_events,
            "recorder_max_dumps": recorder_max_dumps,
            "energy_attribution": energy_attribution,
            "anomaly_rules": anomaly_rules,
            "stream": stream,
            "live_export": live_export,
            "metrics_snapshot": metrics_snapshot,
            "dashboard": dashboard,
            "dashboard_mode": dashboard_mode,
            "watch_interval": watch_interval,
            "dashboard_out": dashboard_out,
        }
        self.tracer = None
        self.telemetry = None
        self.profiler = None
        self.recorder = None
        self.energy = None
        self.anomaly = None
        self.bus = None
        self.dashboard = None
        self.live_sink = None
        self.metrics_sink = None
        self._net = None
        self._finished = False

    def _opt(self, name: str, cfg_value):
        value = self._opts[name]
        return cfg_value if value is _INHERIT else value

    @property
    def attached(self) -> bool:
        return self._net is not None

    def attach(self, net) -> "Observers":
        """Build and wire every enabled observer into ``net``.

        ``net`` is a :class:`~repro.core.network.PReCinCtNetwork` whose
        substrates (sim, stack, peers, energy ledger, event log,
        faults) are already constructed.  Idempotence guard: a second
        attach (or attaching one instance to two engines) raises.
        """
        if self._net is not None:
            raise RuntimeError(
                "Observers instance is already attached to an engine"
            )
        self._net = net
        cfg = net.cfg

        if self._opt("tracing", cfg.enable_tracing):
            from repro.obs.sampling import make_sampler
            from repro.obs.tracer import Tracer

            # The head-based sampler draws from the dedicated "obs"
            # stream: stream independence keeps any sample rate
            # digest-neutral.  Rate 1.0 installs no sampler at all.
            rate = self._opt("trace_sample_rate", cfg.trace_sample_rate)
            sampler = make_sampler(rate, rng=net.rngs.get("obs"))
            self.tracer = Tracer(lambda: net.sim.now, sampler=sampler)
            net.stack.router.on_hop = net._on_gpsr_hop
            if net.faults is not None and net.faults.injector is not None:
                net.faults.injector.observer = net._on_fault_fired

        if self._opt("energy_attribution", cfg.enable_energy_attribution):
            from repro.energy.attribution import EnergyAttributor

            peers = net.peers

            def region_of(node: int) -> int:
                return peers[node].current_region_id

            self.energy = EnergyAttributor(
                tracer=self.tracer, region_of=region_of
            )
            net.network.energy.observer = self.energy

        if self._opt("profiling", cfg.enable_profiling):
            from repro.obs.profile import PerfProfiler

            self.profiler = PerfProfiler()
            net.sim.profile = self.profiler
            net.stack.router.profile = self.profiler
            net.stack.flooder.profile = self.profiler
            for peer in net.peers:
                peer.cache.profile = self.profiler

        # Any live consumer (a sink, the dashboard, or an explicit
        # stream=True) arms the bus, and the bus implies the sampler:
        # live views are fed by the same periodic rows as the table.
        live_export = self._opt("live_export", cfg.live_export_path)
        metrics_snapshot = self._opt(
            "metrics_snapshot", cfg.metrics_snapshot_path
        )
        dashboard_on = self._opt("dashboard", cfg.enable_dashboard)
        stream_on = (
            self._opt("stream", cfg.enable_stream)
            or live_export is not None
            or metrics_snapshot is not None
            or dashboard_on
        )

        if self._opt("telemetry", cfg.enable_telemetry) or stream_on:
            from repro.obs.telemetry import TelemetrySampler

            self.telemetry = TelemetrySampler(
                net.sim,
                net._telemetry_snapshot,
                self._opt("telemetry_interval", cfg.telemetry_interval),
                until=cfg.duration,
            )

        if stream_on:
            from repro.obs.stream import (
                JsonlLiveSink,
                MetricsSnapshotWriter,
                TelemetryBus,
            )

            self.bus = TelemetryBus()
            self.telemetry.bus = self.bus
            if live_export is not None:
                self.live_sink = JsonlLiveSink(live_export)
                self.bus.attach_sink(self.live_sink)
            if metrics_snapshot is not None:
                self.metrics_sink = MetricsSnapshotWriter(metrics_snapshot)
                self.bus.attach_sink(self.metrics_sink)

        recorder_dir = self._opt("recorder_dir", cfg.flight_recorder_dir)
        if recorder_dir is not None:
            from repro.obs.recorder import FlightRecorder

            self.recorder = FlightRecorder(
                recorder_dir,
                eventlog=net.log,
                tracer=self.tracer,
                telemetry=self.telemetry.table if self.telemetry else None,
                last_events=self._opt(
                    "recorder_events", cfg.flight_recorder_events
                ),
                max_dumps=self._opt(
                    "recorder_max_dumps", cfg.flight_recorder_max_dumps
                ),
            )
            net.sim.on_crash = net._on_engine_crash

        rules = self._opt("anomaly_rules", cfg.anomaly_rules)
        if rules:
            from repro.obs.anomaly import AnomalyWatcher

            self.anomaly = AnomalyWatcher(
                rules, recorder=self.recorder, bus=self.bus
            )
            if self.telemetry is not None:
                self.telemetry.on_sample = self.anomaly.check

        if dashboard_on:
            from repro.obs.dashboard import Dashboard

            self.dashboard = Dashboard(
                self.bus,
                duration=cfg.duration,
                interval=self._opt("watch_interval", cfg.watch_interval),
                mode=self._opt("dashboard_mode", cfg.dashboard_mode),
                out=self._opt("dashboard_out", None),
                anomaly=self.anomaly,
            )
        return self

    def finish(self) -> None:
        """End-of-run finalization; called by the engine after the loop.

        Order matters: the sampler's final catch-up row must reach the
        bus *before* the live sink writes its ``end`` marker and the
        dashboard paints its last frame.  Idempotent — every step is.
        """
        if self._finished:
            return
        self._finished = True
        if self.telemetry is not None:
            self.telemetry.finalize()
        if self.dashboard is not None:
            self.dashboard.close()
        if self.bus is not None:
            self.bus.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        active = [
            name for name, obj in (
                ("tracer", self.tracer),
                ("telemetry", self.telemetry),
                ("profiler", self.profiler),
                ("recorder", self.recorder),
                ("energy", self.energy),
                ("anomaly", self.anomaly),
                ("bus", self.bus),
                ("dashboard", self.dashboard),
            ) if obj is not None
        ]
        return f"Observers({', '.join(active) or 'none active'})"
