"""Structured event logging.

An optional, bounded, in-memory log of protocol-level events (request
lifecycle, custody movement, region operations).  Disabled by default —
the hot path pays a single ``if`` — and enabled per run with
``SimulationConfig(enable_event_log=True)``.

Events are plain records, queryable after the run::

    net = PReCinCtNetwork(cfg_with_log)
    net.run()
    for e in net.log.of_kind("request.served"):
        print(e.time, e.fields["peer"], e.fields["latency"])
"""

from __future__ import annotations

import json
from collections import Counter, deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, Iterator, List, Optional

__all__ = ["Event", "EventLog"]


@dataclass(frozen=True)
class Event:
    """One logged protocol event."""

    time: float
    kind: str
    fields: Dict[str, Any] = field(default_factory=dict)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kv = " ".join(f"{k}={v!r}" for k, v in self.fields.items())
        return f"[{self.time:10.3f}] {self.kind} {kv}"


class EventLog:
    """Bounded in-memory event ring.

    Parameters
    ----------
    capacity:
        Maximum retained events; older events are discarded first.
        ``None`` retains everything (use only for short runs).
    """

    def __init__(self, capacity: Optional[int] = 100_000):
        self._events: Deque[Event] = deque(maxlen=capacity)
        self.dropped = 0
        self._capacity = capacity

    def record(self, time: float, kind: str, **fields: Any) -> None:
        if (
            self._capacity is not None
            and len(self._events) == self._capacity
        ):
            self.dropped += 1
        self._events.append(Event(time, kind, fields))

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self._events)

    def of_kind(self, kind: str) -> List[Event]:
        """All retained events of one kind, in time order."""
        return [e for e in self._events if e.kind == kind]

    def counts(self) -> Dict[str, int]:
        """Event counts per kind."""
        return dict(Counter(e.kind for e in self._events))

    def between(self, start: float, end: float) -> List[Event]:
        """Events in the half-open virtual-time window [start, end)."""
        return [e for e in self._events if start <= e.time < end]

    def clear(self) -> None:
        self._events.clear()
        self.dropped = 0

    # -- persistence ------------------------------------------------------

    def to_jsonl(self, path) -> int:
        """Write the retained events as JSON Lines; returns the count.

        The first line is a header object carrying the ring's ``dropped``
        count, so truncation survives the round trip.  Non-JSON field
        values are rendered with ``repr`` (lossy but never fails).
        """
        n = 0
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(json.dumps({"__eventlog__": 1, "dropped": self.dropped}))
            fh.write("\n")
            for event in self._events:
                fh.write(json.dumps(
                    {"time": event.time, "kind": event.kind,
                     "fields": event.fields},
                    sort_keys=True, default=repr))
                fh.write("\n")
                n += 1
        return n

    @classmethod
    def from_jsonl(cls, path, capacity: Optional[int] = None) -> "EventLog":
        """Rebuild an :class:`EventLog` from a :meth:`to_jsonl` file.

        ``capacity`` defaults to unbounded so a loaded log is never
        re-truncated; the header's ``dropped`` count is restored.
        """
        log = cls(capacity=capacity)
        with open(path, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                record = json.loads(line)
                if "__eventlog__" in record:
                    log.dropped = int(record.get("dropped", 0))
                    continue
                log._events.append(Event(
                    float(record["time"]), str(record["kind"]),
                    dict(record.get("fields", {}))))
        return log

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"EventLog(n={len(self._events)}, dropped={self.dropped})"
