"""Deterministic discrete-event simulation engine.

The engine follows the classic event-queue design used by NS-2 and SimPy:
a priority queue of ``(time, priority, sequence)``-ordered events whose
callbacks are executed in nondecreasing virtual-time order.  Two layers of
API are offered:

* a **callback layer** — :meth:`Simulator.schedule` /
  :meth:`Simulator.schedule_at` register a plain callable to run at a
  virtual time; this is the fast path used by the network substrate, and
* a **process layer** — :meth:`Simulator.spawn` drives a Python generator
  as a cooperative process that may ``yield`` :class:`Timeout`,
  :class:`Signal`, :class:`Process`, :class:`AllOf` or :class:`AnyOf`
  instances to suspend itself; this is the convenient path used by
  workload generators and peer behaviours.

Event records
-------------
Heap entries come in two layouts sharing one ``(time, priority, seq)``
key prefix, so both sort through the same :mod:`heapq`:

* ``(time, priority, seq, EventHandle, None)`` — a *cancellable* event;
  the handle allows O(1) lazy cancellation, and
* ``(time, priority, seq, callback, args)`` — a *fast* event
  (:meth:`Simulator.schedule_fast`): the record is the heap tuple
  itself, with no per-event handle object allocated.  Fire-and-forget
  traffic (packet deliveries, batched broadcasts) uses this layout.

The two layouts are told apart by slot 4: ``None`` marks a handle entry
(``args`` of a fast event is always a tuple).  The shared ``seq``
counter means tuple comparison never reaches slot 3, so handles and
callbacks never need ordering of their own.

Determinism
-----------
Events scheduled for the same virtual time are executed in ``(priority,
sequence)`` order, where ``sequence`` is a monotonically increasing
insertion counter shared by both event layouts.  Given identical inputs
and seeds a run is exactly reproducible, which the test suite relies on.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Generator, Iterable, List, Optional, Tuple

__all__ = [
    "AllOf",
    "AnyOf",
    "CancelledError",
    "EventHandle",
    "Interrupt",
    "Process",
    "Signal",
    "SimulationError",
    "Simulator",
    "Timeout",
]


class SimulationError(RuntimeError):
    """Raised for invalid scheduler usage (e.g. scheduling in the past)."""


class CancelledError(SimulationError):
    """Raised inside a process whose pending wait was cancelled."""


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`.

    The ``cause`` attribute carries the value passed to ``interrupt``.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class EventHandle:
    """Handle for a scheduled callback, allowing cancellation.

    Cancellation is lazy: the heap entry stays in place but is skipped when
    popped.  This is O(1) and avoids heap surgery.
    """

    __slots__ = ("time", "callback", "args", "cancelled")

    def __init__(self, time: float, callback: Callable[..., Any], args: Tuple[Any, ...]):
        self.time = time
        self.callback = callback
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the callback from running.  Idempotent."""
        self.cancelled = True


class _Waitable:
    """Base class for things a process may ``yield`` on."""

    def _subscribe(self, sim: "Simulator", process: "Process") -> Callable[[], None]:
        """Arrange for *process* to be resumed; return an unsubscribe thunk."""
        raise NotImplementedError


class Timeout(_Waitable):
    """Suspend the yielding process for ``delay`` units of virtual time.

    ``value`` is returned to the process when the timeout fires.
    """

    __slots__ = ("delay", "value")

    def __init__(self, delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay!r}")
        self.delay = float(delay)
        self.value = value

    def _subscribe(self, sim: "Simulator", process: "Process") -> Callable[[], None]:
        handle = sim.schedule(self.delay, process._resume, self.value)
        return handle.cancel

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Timeout({self.delay!r})"


class Signal(_Waitable):
    """A one-shot, multi-waiter event that processes can wait on.

    A :class:`Signal` starts *untriggered*.  Any number of processes may
    ``yield`` it; when :meth:`trigger` is called every waiter is resumed at
    the current virtual time with the trigger value.  Processes yielding an
    already-triggered signal resume immediately (next scheduler step).
    """

    __slots__ = ("_sim", "triggered", "value", "_waiters", "name")

    def __init__(self, sim: "Simulator", name: str = ""):
        self._sim = sim
        self.triggered = False
        self.value: Any = None
        self._waiters: List[Process] = []
        self.name = name

    def trigger(self, value: Any = None) -> None:
        """Fire the signal, waking all current waiters.

        Triggering twice is an error: one-shot semantics keep protocol
        logic honest about reply/response lifecycles.
        """
        if self.triggered:
            raise SimulationError(f"signal {self.name!r} triggered twice")
        self.triggered = True
        self.value = value
        waiters, self._waiters = self._waiters, []
        for process in waiters:
            self._sim.schedule(0.0, process._resume, value)

    def _subscribe(self, sim: "Simulator", process: "Process") -> Callable[[], None]:
        if self.triggered:
            handle = sim.schedule(0.0, process._resume, self.value)
            return handle.cancel
        self._waiters.append(process)

        def unsubscribe() -> None:
            try:
                self._waiters.remove(process)
            except ValueError:
                pass

        return unsubscribe

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "triggered" if self.triggered else "pending"
        return f"Signal({self.name!r}, {state})"


class AllOf(_Waitable):
    """Wait until *all* component waitables complete.

    The resume value is a list of the component values, in the order the
    components were given.
    """

    def __init__(self, waitables: Iterable[_Waitable]):
        self.waitables = list(waitables)
        if not self.waitables:
            raise SimulationError("AllOf requires at least one waitable")

    def _subscribe(self, sim: "Simulator", process: "Process") -> Callable[[], None]:
        remaining = len(self.waitables)
        values: List[Any] = [None] * remaining
        unsubs: List[Callable[[], None]] = []
        done = False

        def make_collector(index: int) -> "Process":
            def body() -> Generator[Any, Any, None]:
                value = yield self.waitables[index]
                nonlocal remaining, done
                values[index] = value
                remaining -= 1
                if remaining == 0 and not done:
                    done = True
                    sim.schedule(0.0, process._resume, values)

            return sim.spawn(body(), name=f"allof-{index}")

        for i in range(len(self.waitables)):
            make_collector(i)

        def unsubscribe() -> None:
            nonlocal done
            done = True
            for unsub in unsubs:
                unsub()

        return unsubscribe


class AnyOf(_Waitable):
    """Wait until *any one* component waitable completes.

    The resume value is ``(index, value)`` of the first completion.
    Remaining components keep running; their values are discarded.
    """

    def __init__(self, waitables: Iterable[_Waitable]):
        self.waitables = list(waitables)
        if not self.waitables:
            raise SimulationError("AnyOf requires at least one waitable")

    def _subscribe(self, sim: "Simulator", process: "Process") -> Callable[[], None]:
        done = False

        def make_racer(index: int) -> "Process":
            def body() -> Generator[Any, Any, None]:
                value = yield self.waitables[index]
                nonlocal done
                if not done:
                    done = True
                    sim.schedule(0.0, process._resume, (index, value))

            return sim.spawn(body(), name=f"anyof-{index}")

        for i in range(len(self.waitables)):
            make_racer(i)

        def unsubscribe() -> None:
            nonlocal done
            done = True

        return unsubscribe


class Process(_Waitable):
    """A generator-driven cooperative process.

    Created via :meth:`Simulator.spawn`.  The generator may yield any
    :class:`_Waitable`; the value the waitable produces is sent back into
    the generator.  When the generator returns, the process completes and
    anything waiting on the process itself is resumed with the generator's
    return value.
    """

    __slots__ = ("sim", "name", "_gen", "alive", "result", "_completion", "_unsubscribe")

    def __init__(self, sim: "Simulator", gen: Generator[Any, Any, Any], name: str = ""):
        self.sim = sim
        self.name = name or f"process-{id(gen):x}"
        self._gen = gen
        self.alive = True
        self.result: Any = None
        self._completion = Signal(sim, name=f"{self.name}.done")
        self._unsubscribe: Optional[Callable[[], None]] = None

    # -- lifecycle -------------------------------------------------------

    def _start(self) -> None:
        self.sim.schedule(0.0, self._resume, None)

    def _resume(self, value: Any = None) -> None:
        if not self.alive:
            return
        self._unsubscribe = None
        try:
            target = self._gen.send(value)
        except StopIteration as stop:
            self._finish(stop.value)
            return
        self._wait_on(target)

    def _throw(self, exc: BaseException) -> None:
        if not self.alive:
            return
        if self._unsubscribe is not None:
            self._unsubscribe()
            self._unsubscribe = None
        try:
            target = self._gen.throw(exc)
        except StopIteration as stop:
            self._finish(stop.value)
            return
        except Interrupt:
            # Process chose not to handle the interrupt: treat as termination.
            self._finish(None)
            return
        self._wait_on(target)

    def _wait_on(self, target: Any) -> None:
        if not isinstance(target, _Waitable):
            raise SimulationError(
                f"process {self.name!r} yielded {target!r}, which is not a waitable"
            )
        self._unsubscribe = target._subscribe(self.sim, self)

    def _finish(self, result: Any) -> None:
        self.alive = False
        self.result = result
        self.sim._live_processes.discard(self)
        if not self._completion.triggered:
            self._completion.trigger(result)

    # -- public API ------------------------------------------------------

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if self.alive:
            self.sim.schedule(0.0, self._throw, Interrupt(cause))

    def kill(self) -> None:
        """Terminate the process immediately without running it further."""
        if not self.alive:
            return
        if self._unsubscribe is not None:
            self._unsubscribe()
            self._unsubscribe = None
        self._gen.close()
        self._finish(None)

    def _subscribe(self, sim: "Simulator", process: "Process") -> Callable[[], None]:
        # Waiting on a process means waiting on its completion signal.
        return self._completion._subscribe(sim, process)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "alive" if self.alive else "done"
        return f"Process({self.name!r}, {state})"


class Simulator:
    """The event-queue scheduler at the heart of the simulation.

    Example
    -------
    >>> sim = Simulator()
    >>> seen = []
    >>> _ = sim.schedule(2.0, seen.append, "b")
    >>> _ = sim.schedule(1.0, seen.append, "a")
    >>> sim.run()
    >>> seen
    ['a', 'b']
    """

    def __init__(self) -> None:
        self.now: float = 0.0
        # Entries: (time, priority, seq, EventHandle, None) — cancellable —
        # or (time, priority, seq, callback, args) — fast, fire-and-forget.
        self._queue: List[Tuple[float, int, int, Any, Any]] = []
        self._sequence = itertools.count()
        self._live_processes: set = set()
        self._running = False
        self.events_executed: int = 0
        #: Optional :class:`repro.obs.profile.PerfProfiler`; when set,
        #: every dispatched callback is timed under "engine.dispatch".
        self.profile = None
        #: Optional ``callback(exc)`` invoked (before re-raising) when a
        #: dispatched event callback raises — the flight recorder's
        #: crash hook.
        self.on_crash = None

    # -- scheduling ------------------------------------------------------

    def schedule(
        self,
        delay: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = 0,
    ) -> EventHandle:
        """Run ``callback(*args)`` after ``delay`` units of virtual time.

        ``priority`` breaks ties among same-time events (lower first);
        insertion order breaks remaining ties.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay!r})")
        return self.schedule_at(self.now + delay, callback, *args, priority=priority)

    def schedule_at(
        self,
        time: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = 0,
    ) -> EventHandle:
        """Run ``callback(*args)`` at absolute virtual time ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule into the past (time={time!r}, now={self.now!r})"
            )
        handle = EventHandle(time, callback, args)
        heapq.heappush(self._queue, (time, priority, next(self._sequence), handle, None))
        return handle

    def schedule_fast(
        self,
        delay: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = 0,
    ) -> None:
        """Schedule a *fire-and-forget* callback: no cancellation handle.

        Same time/priority/insertion-order semantics as :meth:`schedule`
        (the two share one sequence counter, so fast and cancellable
        events interleave exactly by insertion order), but the event
        record is the heap tuple itself — nothing else is allocated.
        Use for the delivery-heavy network hot path; anything that may
        need :meth:`EventHandle.cancel` must use :meth:`schedule`.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay!r})")
        heapq.heappush(
            self._queue,
            (self.now + delay, priority, next(self._sequence), callback, args),
        )

    def schedule_at_fast(
        self,
        time: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = 0,
    ) -> None:
        """Absolute-time variant of :meth:`schedule_fast`."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule into the past (time={time!r}, now={self.now!r})"
            )
        heapq.heappush(
            self._queue, (time, priority, next(self._sequence), callback, args)
        )

    def spawn(self, gen: Generator[Any, Any, Any], name: str = "") -> Process:
        """Start a generator as a cooperative process."""
        process = Process(self, gen, name=name)
        self._live_processes.add(process)
        process._start()
        return process

    def signal(self, name: str = "") -> Signal:
        """Create a fresh :class:`Signal` bound to this simulator."""
        return Signal(self, name=name)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create a :class:`Timeout` (convenience mirror of SimPy's API)."""
        return Timeout(delay, value)

    # -- execution -------------------------------------------------------

    def step(self) -> bool:
        """Execute the next event.  Returns False when the queue is empty."""
        while self._queue:
            time, _priority, _seq, target, args = heapq.heappop(self._queue)
            if args is None:  # cancellable entry: target is an EventHandle
                if target.cancelled:
                    continue
                args = target.args
                target = target.callback
            self.now = time
            self.events_executed += 1
            try:
                if self.profile is not None:
                    with self.profile.perf_section("engine.dispatch"):
                        target(*args)
                else:
                    target(*args)
            except Exception as exc:
                if self.on_crash is not None:
                    self.on_crash(exc)
                raise
            return True
        return False

    def peek(self) -> Optional[float]:
        """Virtual time of the next pending event, or None if idle."""
        queue = self._queue
        while queue and queue[0][4] is None and queue[0][3].cancelled:
            heapq.heappop(queue)
        return queue[0][0] if queue else None

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run until the queue drains, ``until`` is reached, or the event
        budget ``max_events`` is exhausted.

        When ``until`` is given the clock is left exactly at ``until`` even
        if the queue drained earlier, matching SimPy semantics so that
        rate computations (events per simulated second) stay meaningful.
        """
        if self._running:
            raise SimulationError("simulator is already running (re-entrant run())")
        self._running = True
        executed = 0
        queue = self._queue
        pop = heapq.heappop
        try:
            # Inlined peek()+step(): one heap access per event instead of
            # two, and no per-event method-call overhead — semantics are
            # identical (same skip/clock/counter/hook behaviour).
            while queue:
                head = queue[0]
                if head[4] is None and head[3].cancelled:
                    pop(queue)
                    continue
                time = head[0]
                if until is not None and time > until:
                    break
                if max_events is not None and executed >= max_events:
                    break
                pop(queue)
                target = head[3]
                args = head[4]
                if args is None:
                    args = target.args
                    target = target.callback
                self.now = time
                self.events_executed += 1
                try:
                    if self.profile is not None:
                        with self.profile.perf_section("engine.dispatch"):
                            target(*args)
                    else:
                        target(*args)
                except Exception as exc:
                    if self.on_crash is not None:
                        self.on_crash(exc)
                    raise
                executed += 1
            if until is not None and self.now < until:
                self.now = until
        finally:
            self._running = False

    @property
    def pending_events(self) -> int:
        """Number of not-yet-cancelled events still queued."""
        return sum(
            1
            for entry in self._queue
            if entry[4] is not None or not entry[3].cancelled
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Simulator(now={self.now!r}, pending={self.pending_events})"
