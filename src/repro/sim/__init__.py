"""Discrete-event simulation kernel.

This subpackage provides the simulation substrate used by every other part
of the PReCinCt reproduction: a deterministic event-queue scheduler
(:class:`~repro.sim.engine.Simulator`), a lightweight generator-based
process layer (:class:`~repro.sim.engine.Process`,
:class:`~repro.sim.engine.Timeout`, :class:`~repro.sim.engine.Signal`),
seeded random-stream management (:class:`~repro.sim.rng.RngRegistry`) and
statistics collection (:mod:`repro.sim.trace`).

The kernel is intentionally free of any networking or caching concepts;
those live in :mod:`repro.net` and :mod:`repro.core`.
"""

from repro.sim.engine import (
    AllOf,
    AnyOf,
    CancelledError,
    Interrupt,
    Process,
    Signal,
    SimulationError,
    Simulator,
    Timeout,
)
from repro.sim.rng import RngRegistry
from repro.sim.trace import Counter, StatRegistry, TimeSeries, WelfordAccumulator

__all__ = [
    "AllOf",
    "AnyOf",
    "CancelledError",
    "Counter",
    "Interrupt",
    "Process",
    "RngRegistry",
    "Signal",
    "SimulationError",
    "Simulator",
    "StatRegistry",
    "TimeSeries",
    "Timeout",
    "WelfordAccumulator",
]
