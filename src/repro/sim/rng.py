"""Seeded random-stream management.

Every stochastic component of the simulation (mobility, workload, MAC
jitter, ...) draws from its own named substream so that

* runs are exactly reproducible given a root seed, and
* changing how one component consumes randomness does not perturb the
  draws seen by any other component (stream independence).

Substreams are derived with :class:`numpy.random.SeedSequence` spawning,
which guarantees statistical independence between streams.
"""

from __future__ import annotations

import zlib
from typing import Dict

import numpy as np

__all__ = ["RngRegistry"]


class RngRegistry:
    """Registry of independent, named random generators.

    Parameters
    ----------
    seed:
        Root seed for the whole simulation.  Two registries created with
        the same seed hand out identical streams for identical names,
        regardless of the order the streams are requested in.

    Example
    -------
    >>> rngs = RngRegistry(seed=7)
    >>> a1 = rngs.get("mobility").random()
    >>> rngs2 = RngRegistry(seed=7)
    >>> _ = rngs2.get("workload")  # different request order
    >>> a2 = rngs2.get("mobility").random()
    >>> a1 == a2
    True
    """

    def __init__(self, seed: int = 0):
        self.seed = int(seed)
        self._generators: Dict[str, np.random.Generator] = {}

    def get(self, name: str) -> np.random.Generator:
        """Return the generator for *name*, creating it deterministically.

        The stream key is derived by hashing the name, so the set of other
        streams in use never influences this stream's draws.
        """
        gen = self._generators.get(name)
        if gen is None:
            stream_key = zlib.crc32(name.encode("utf-8"))
            seq = np.random.SeedSequence(entropy=self.seed, spawn_key=(stream_key,))
            gen = np.random.default_rng(seq)
            self._generators[name] = gen
        return gen

    def __contains__(self, name: str) -> bool:
        return name in self._generators

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RngRegistry(seed={self.seed}, streams={sorted(self._generators)})"
