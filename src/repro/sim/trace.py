"""Statistics and trace collection.

Collectors are deliberately dependency-free and cheap: the simulation's
hot paths (message delivery, cache lookups) increment counters or feed
one-pass accumulators.  Aggregation into the paper's metrics (latency per
request, byte hit ratio, false-hit ratio, control message overhead,
energy per request) happens in :mod:`repro.analysis.metrics`.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

__all__ = ["Counter", "TimeSeries", "WelfordAccumulator", "StatRegistry"]


class Counter:
    """A named monotonically increasing counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def add(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (amount={amount})")
        self.value += amount

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.name!r}, {self.value})"


class WelfordAccumulator:
    """One-pass mean/variance/min/max accumulator (Welford's algorithm).

    Numerically stable for long runs, O(1) memory — suitable for
    accumulating per-request latencies across hundreds of thousands of
    requests without storing them all.
    """

    __slots__ = ("count", "_mean", "_m2", "min", "max", "total")

    def __init__(self) -> None:
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.total = 0.0

    def add(self, x: float) -> None:
        self.count += 1
        self.total += x
        delta = x - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (x - self._mean)
        if x < self.min:
            self.min = x
        if x > self.max:
            self.max = x

    @property
    def mean(self) -> float:
        return self._mean if self.count else float("nan")

    @property
    def variance(self) -> float:
        """Sample variance (ddof=1)."""
        if self.count < 2:
            return float("nan")
        return self._m2 / (self.count - 1)

    @property
    def std(self) -> float:
        v = self.variance
        return math.sqrt(v) if v == v else float("nan")

    def merge(self, other: "WelfordAccumulator") -> "WelfordAccumulator":
        """Combine two accumulators (Chan et al. parallel merge)."""
        merged = WelfordAccumulator()
        n = self.count + other.count
        if n == 0:
            return merged
        delta = other._mean - self._mean
        merged.count = n
        merged.total = self.total + other.total
        merged._mean = self._mean + delta * other.count / n
        merged._m2 = self._m2 + other._m2 + delta * delta * self.count * other.count / n
        merged.min = min(self.min, other.min)
        merged.max = max(self.max, other.max)
        return merged

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"WelfordAccumulator(n={self.count}, mean={self.mean:.6g})"


class TimeSeries:
    """Append-only (time, value) series for post-run plotting or checks."""

    __slots__ = ("name", "times", "values")

    def __init__(self, name: str):
        self.name = name
        self.times: List[float] = []
        self.values: List[float] = []

    def record(self, time: float, value: float) -> None:
        if self.times and time < self.times[-1]:
            raise ValueError(
                f"time series {self.name!r} got out-of-order time {time} < {self.times[-1]}"
            )
        self.times.append(time)
        self.values.append(value)

    def __len__(self) -> int:
        return len(self.times)

    def last(self) -> Optional[Tuple[float, float]]:
        if not self.times:
            return None
        return self.times[-1], self.values[-1]


class StatRegistry:
    """Namespace of counters, accumulators and series for one simulation run."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._accumulators: Dict[str, WelfordAccumulator] = {}
        self._series: Dict[str, TimeSeries] = {}

    def counter(self, name: str) -> Counter:
        c = self._counters.get(name)
        if c is None:
            c = self._counters[name] = Counter(name)
        return c

    def accumulator(self, name: str) -> WelfordAccumulator:
        a = self._accumulators.get(name)
        if a is None:
            a = self._accumulators[name] = WelfordAccumulator()
        return a

    def series(self, name: str) -> TimeSeries:
        s = self._series.get(name)
        if s is None:
            s = self._series[name] = TimeSeries(name)
        return s

    # -- convenience -----------------------------------------------------

    def count(self, name: str, amount: float = 1.0) -> None:
        # Hottest call in the simulation (every packet touches several
        # counters): one dict probe and an unguarded add.  Negative
        # amounts only ever come from direct Counter.add callers, which
        # keep the guard.
        c = self._counters.get(name)
        if c is None:
            c = self._counters[name] = Counter(name)
        if amount < 0:
            raise ValueError(f"counter {name!r} cannot decrease (amount={amount})")
        c.value += amount

    def observe(self, name: str, value: float) -> None:
        self.accumulator(name).add(value)

    def value(self, name: str) -> float:
        """Counter value by name (0 if never touched)."""
        c = self._counters.get(name)
        return c.value if c else 0.0

    def counters(self) -> Dict[str, float]:
        """Flat ``{name: value}`` view of every counter.

        A read-only snapshot for in-run samplers (telemetry); unlike
        :meth:`snapshot` it carries no ``count.`` prefix and omits
        accumulators.
        """
        return {name: c.value for name, c in self._counters.items()}

    def mean(self, name: str) -> float:
        """Accumulator mean by name (NaN if never touched)."""
        a = self._accumulators.get(name)
        return a.mean if a else float("nan")

    def reset(self) -> None:
        """Zero all counters and accumulators (end-of-warm-up hook).

        Time series are kept: they are explicitly timestamped, so
        post-run analysis can window them itself.
        """
        for c in self._counters.values():
            c.value = 0.0
        for name in list(self._accumulators):
            self._accumulators[name] = WelfordAccumulator()

    def snapshot(self) -> Dict[str, float]:
        """Flat dict of all counters and accumulator means, for reports."""
        out: Dict[str, float] = {}
        for name, c in self._counters.items():
            out[f"count.{name}"] = c.value
        for name, a in self._accumulators.items():
            out[f"mean.{name}"] = a.mean
            out[f"n.{name}"] = float(a.count)
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"StatRegistry(counters={len(self._counters)}, "
            f"accumulators={len(self._accumulators)}, series={len(self._series)})"
        )
