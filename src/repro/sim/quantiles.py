"""Streaming quantile estimation (the P-square algorithm).

Latency *averages* hide tail behaviour — a scheme can look fine on the
mean while its p95 explodes (timeout-and-retry paths).  The P² algorithm
(Jain & Chlamtac 1985) estimates a quantile in O(1) memory per target by
maintaining five markers whose positions are adjusted with parabolic
interpolation, making per-request latency percentiles affordable inside
the simulator's hot path.

Accuracy is excellent for smooth distributions and adequate (a few
percent) for the mixture distributions request latencies follow; tests
compare against numpy on both.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence

__all__ = ["P2Quantile", "QuantileSet"]


class P2Quantile:
    """One streaming quantile estimate via the P² algorithm."""

    def __init__(self, q: float):
        if not 0.0 < q < 1.0:
            raise ValueError(f"quantile must be in (0, 1), got {q}")
        self.q = float(q)
        self._initial: List[float] = []
        # Marker heights, positions, and desired positions.
        self._heights: List[float] = []
        self._positions: List[float] = []
        self._desired: List[float] = []
        self._increments: List[float] = []
        self.count = 0

    def add(self, x: float) -> None:
        self.count += 1
        if self._heights:
            self._insert(x)
            return
        self._initial.append(x)
        if len(self._initial) == 5:
            self._initial.sort()
            q = self.q
            self._heights = list(self._initial)
            self._positions = [1.0, 2.0, 3.0, 4.0, 5.0]
            self._desired = [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0]
            self._increments = [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0]

    def _insert(self, x: float) -> None:
        h = self._heights
        pos = self._positions
        # Find the cell k containing x and update extreme markers.
        if x < h[0]:
            h[0] = x
            k = 0
        elif x >= h[4]:
            h[4] = x
            k = 3
        else:
            k = 0
            while k < 3 and x >= h[k + 1]:
                k += 1
        for i in range(k + 1, 5):
            pos[i] += 1.0
        for i in range(5):
            self._desired[i] += self._increments[i]
        # Adjust interior markers.
        for i in (1, 2, 3):
            d = self._desired[i] - pos[i]
            if (d >= 1.0 and pos[i + 1] - pos[i] > 1.0) or (
                d <= -1.0 and pos[i - 1] - pos[i] < -1.0
            ):
                step = 1.0 if d >= 1.0 else -1.0
                candidate = self._parabolic(i, step)
                if h[i - 1] < candidate < h[i + 1]:
                    h[i] = candidate
                else:
                    h[i] = self._linear(i, step)
                pos[i] += step

    def _parabolic(self, i: int, step: float) -> float:
        h = self._heights
        pos = self._positions
        return h[i] + step / (pos[i + 1] - pos[i - 1]) * (
            (pos[i] - pos[i - 1] + step)
            * (h[i + 1] - h[i])
            / (pos[i + 1] - pos[i])
            + (pos[i + 1] - pos[i] - step)
            * (h[i] - h[i - 1])
            / (pos[i] - pos[i - 1])
        )

    def _linear(self, i: int, step: float) -> float:
        h = self._heights
        pos = self._positions
        j = i + int(step)
        return h[i] + step * (h[j] - h[i]) / (pos[j] - pos[i])

    @property
    def value(self) -> float:
        """Current quantile estimate (NaN before any sample)."""
        if self._heights:
            return self._heights[2]
        if not self._initial:
            return float("nan")
        ordered = sorted(self._initial)
        # Small-sample fallback: nearest-rank.
        rank = min(len(ordered) - 1, max(0, math.ceil(self.q * len(ordered)) - 1))
        return ordered[rank]


class QuantileSet:
    """A bundle of P² estimators fed from a single stream."""

    def __init__(self, quantiles: Sequence[float] = (0.5, 0.95, 0.99)):
        self._estimators: Dict[float, P2Quantile] = {
            q: P2Quantile(q) for q in quantiles
        }

    def add(self, x: float) -> None:
        for est in self._estimators.values():
            est.add(x)

    def value(self, q: float) -> float:
        return self._estimators[q].value

    def snapshot(self) -> Dict[float, float]:
        return {q: est.value for q, est in self._estimators.items()}

    @property
    def count(self) -> int:
        ests = list(self._estimators.values())
        return ests[0].count if ests else 0
