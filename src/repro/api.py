"""Stable public API facade.

Everything a script needs to run, audit, and observe a simulation,
importable from one place::

    from repro.api import Observers, SimulationConfig, run_scenario

    report = run_scenario(
        "baseline", seed=42,
        observers=Observers(tracing=True, energy_attribution=True),
    )

The facade re-exports (it defines nothing of its own):

``SimulationConfig``
    Every simulation knob (:mod:`repro.config`).
``PReCinCtNetwork``
    The simulation engine; ``PReCinCtNetwork(cfg, observers=...).run()``
    returns a ``RunReport`` (:mod:`repro.core.network`).
``RunReport``
    The end-of-run metrics bundle (:mod:`repro.analysis.metrics`).
``Observers``
    Composition of all observer subsystems — tracing, telemetry,
    profiling, flight recorder, span-level energy attribution, anomaly
    triggers — attached to an engine through one entry point
    (:mod:`repro.obs.observers`).
``run_scenario`` / ``audit_scenario``
    Canonical named scenarios and the determinism audit over them
    (:mod:`repro.faults.audit`).
``reconcile_energy``
    Simulated vs. closed-form (eqs. 11, 12-13) per-request energy with
    a tolerance verdict (:mod:`repro.analysis.energy_reconcile`).
``Clock`` / ``RngStream`` / ``StatSink`` / ``PeerDirectory`` /
``ConsistencyTransport``
    The runtime-agnostic ports the cache core depends on
    (:mod:`repro.ports`) — implement these to host the policy layer in
    a new runtime.
``CacheService``
    One region shard of the edge-cache tier: the simulation's GD-LD /
    TTR / resilience machinery behind an async get/put API
    (:mod:`repro.service.core`).
``EdgeCacheServer`` / ``ServiceConfig``
    The asyncio JSON-lines TCP runtime hosting N geohash-routed
    shards — the ``repro serve`` entry point
    (:mod:`repro.service.server`).
``run_loadgen`` / ``LoadGenConfig``
    The Zipf load generator (closed-loop, or open-loop fixed-rate) —
    the ``repro loadgen`` entry point (:mod:`repro.service.loadgen`).
``ServiceFaultPlan``
    Scripted service-chaos schedule (shard kills/wedges, origin
    brownouts) executed by the server on wall-clock time
    (:mod:`repro.service.faultplan`).

Import paths deeper than :mod:`repro.api` (and the :mod:`repro`
package root re-exports) are internal and may move between releases;
this module's names are the compatibility surface.  The README's
"Public API" table documents exactly this set; a test pins the two
lists against each other.
"""

from __future__ import annotations

from repro.analysis.energy_reconcile import reconcile_energy
from repro.analysis.metrics import RunReport
from repro.config import SimulationConfig
from repro.core.network import PReCinCtNetwork
from repro.faults.audit import audit_scenario, run_scenario
from repro.obs.observers import Observers
from repro.ports import (
    Clock,
    ConsistencyTransport,
    PeerDirectory,
    RngStream,
    StatSink,
)
from repro.service import (
    CacheService,
    EdgeCacheServer,
    LoadGenConfig,
    ServiceConfig,
    ServiceFaultPlan,
    run_loadgen,
)

__all__ = [
    "CacheService",
    "Clock",
    "ConsistencyTransport",
    "EdgeCacheServer",
    "LoadGenConfig",
    "Observers",
    "PReCinCtNetwork",
    "PeerDirectory",
    "RngStream",
    "RunReport",
    "ServiceConfig",
    "ServiceFaultPlan",
    "SimulationConfig",
    "StatSink",
    "audit_scenario",
    "reconcile_energy",
    "run_loadgen",
    "run_scenario",
]
