"""Simulation configuration.

One frozen dataclass gathers every knob of a PReCinCt simulation run,
with defaults matching the paper's setup (§6.1):

* 1200 m x 1200 m plane divided into 9 equal regions,
* up to 160 nodes, 250 m transmission range, 11 Mbps,
* random waypoint motion, 5 s pause, configurable vmax,
* Poisson requests and updates with 30 s mean inter-arrival,
* Zipf popularity with skew theta.

Experiments construct variations with :func:`dataclasses.replace`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.faults.plan import FaultPlan

__all__ = ["SimulationConfig"]


@dataclass(frozen=True)
class SimulationConfig:
    """All parameters of one simulation run."""

    # -- plane and regions -------------------------------------------------
    width: float = 1200.0
    height: float = 1200.0
    n_regions: int = 9

    # -- population ----------------------------------------------------------
    n_nodes: int = 80

    # -- radio ----------------------------------------------------------------
    range_m: float = 250.0
    bandwidth_bps: float = 11e6
    #: Idle/listening power (mW).  0 (default) reproduces the paper's
    #: per-message energy accounting; set ~900 for realistic WaveLAN
    #: total drain including listening.
    idle_power_mw: float = 0.0

    # -- mobility ---------------------------------------------------------------
    #: Mobility model: "random-waypoint" (paper default), "manhattan",
    #: "group" (RPGM), or "stationary".  A stationary model is also
    #: selected automatically when max_speed is 0/None.
    mobility_model: str = "random-waypoint"
    #: Maximum node speed (m/s); 0 or None selects a stationary topology.
    max_speed: Optional[float] = 6.0
    pause_time: float = 5.0
    #: How often peers check their position for inter-region moves (§2.3).
    region_check_interval: float = 1.0
    #: RPGM parameters (mobility_model == "group").
    group_count: int = 6
    group_radius: float = 120.0
    #: Manhattan parameter (mobility_model == "manhattan").
    n_streets: int = 7

    # -- churn (node disconnections; paper future work §7) -------------------------
    #: Mean connected time per peer (s); None disables churn.
    churn_uptime: Optional[float] = None
    #: Mean disconnected time before rejoining (s).
    churn_downtime: float = 60.0
    #: Fraction of departures that are sudden crashes (no key handoff);
    #: the paper assumes "most users quit the network gracefully".
    churn_crash_fraction: float = 0.1

    # -- data set ----------------------------------------------------------------
    n_items: int = 1000
    min_item_bytes: float = 1024.0
    max_item_bytes: float = 10240.0

    # -- workload -----------------------------------------------------------------
    #: Mean inter-request time per peer (s).
    t_request: float = 30.0
    #: Mean inter-update time per peer (s); None disables updates.
    t_update: Optional[float] = None
    #: Zipf skew (the paper's Theta) for read accesses.
    zipf_theta: float = 0.8
    #: Zipf skew of the *update* key distribution.  The paper specifies
    #: Zipf for accesses only; updates default to uniform (0.0).
    update_zipf_theta: float = 0.0
    #: Virtual time of a flash-crowd popularity shift: the read
    #: distribution's rank-to-key mapping is re-drawn, turning the hot
    #: set over at once.  None disables the shift.
    popularity_shift_at: Optional[float] = None

    # -- caching -------------------------------------------------------------------
    #: Dynamic cache capacity as a fraction of total database size
    #: (paper sweeps 0.005-0.025).  Ignored when enable_cache is False.
    cache_fraction: float = 0.01
    #: Replacement policy name: "gd-ld", "gd-size", "lru", or "lfu".
    replacement_policy: str = "gd-ld"
    #: GD-LD weight factors (eq. 1).
    gdld_wr: float = 1.0
    gdld_wd: float = 0.01
    gdld_ws: float = 1024.0
    #: Static-store capacity per peer, as a fraction of total database
    #: size (§3.1 splits cache space into static and dynamic parts).
    #: None (default) leaves custodial storage unbounded; when set,
    #: custody overflowing a peer spills to other regional members.
    static_capacity_fraction: Optional[float] = None
    #: Disable all dynamic caching (the §5.2.2 analytical setting used
    #: by the Fig. 9 experiments).
    enable_cache: bool = True
    #: Cooperative admission control on/off (ablation; paper always on).
    admission_control: bool = True

    # -- consistency ------------------------------------------------------------------
    #: Scheme name: "push-adaptive-pull", "plain-push", "pull-every-time",
    #: or "none" (read-only experiments).
    consistency: str = "none"
    #: EWMA factor alpha of eq. 2.
    ttr_alpha: float = 0.5
    #: TTR before the first observed update (s).  Optimistic by default:
    #: never-updated items should not trigger validation polls; eq. 2
    #: pulls the estimate down as soon as updates are observed.
    default_ttr: float = 300.0

    # -- replication ---------------------------------------------------------------------
    #: Maintain a replica custodian in the second-closest region (§2.4).
    enable_replication: bool = True

    # -- dynamic region management (paper future work §7) -----------------------------------
    #: Enable adaptive Merge/Separate of regions at runtime.
    dynamic_regions: bool = False
    #: Merge regions that fall below this many live members.
    region_min_peers: int = 2
    #: Separate regions that exceed this many live members.
    region_max_peers: int = 24
    #: Census period of the region manager (s).
    region_manage_interval: float = 60.0

    # -- GPSR beaconing (optional realism) -------------------------------------------------
    #: Period of GPSR HELLO beacons (s).  None (default) models perfect
    #: beaconing at zero cost, as the simulator's routing reads neighbor
    #: sets from ground truth; set (e.g. 1.0, GPSR's default) to charge
    #: the beacon traffic and energy the real protocol would spend.
    gpsr_beacon_interval: Optional[float] = None
    #: On-air size of one HELLO beacon (node id + position), bytes.
    gpsr_beacon_bytes: float = 24.0

    # -- protocol timers --------------------------------------------------------------------
    #: Wait for a regional (local) response before going to the home region.
    local_timeout: float = 0.25
    #: Wait for a home-region response before retrying the replica region.
    home_timeout: float = 3.0
    #: Wait for a replica-region response before declaring failure.
    replica_timeout: float = 3.0
    #: Wait for a poll reply before falling back to a full re-fetch.
    poll_timeout: float = 3.0

    # -- popularity prefetching (paper ref. [14] extension) ---------------------------------------
    #: Periodically pull the region's hottest uncached keys into the
    #: dynamic cache ahead of the next request.
    enable_prefetch: bool = False
    #: Prefetch evaluation period per peer (s).
    prefetch_interval: float = 30.0
    #: Keys prefetched per evaluation.
    prefetch_batch: int = 1
    #: Minimum regional access count before a key is prefetch-worthy.
    prefetch_min_count: int = 2

    # -- regional cache digests (Summary Cache, paper ref. [5]) -----------------------------------
    #: Announce Bloom-filter cache summaries within each region so
    #: requesters can skip the local flood when the item is provably
    #: absent from the region.
    enable_digest: bool = False
    #: Announcement period (s).
    digest_interval: float = 20.0
    #: Bloom filter size in bits (multiple of 64).
    digest_bits: int = 2048
    #: Bloom hash count.
    digest_hashes: int = 4

    # -- simulation kernel -----------------------------------------------------------------------
    #: Vectorized event-kernel fast paths: per-topology-generation
    #: neighbor/planarization/region-membership memos, batched broadcast
    #: delivery, and handle-free delivery events.  Bit-identical to the
    #: reference paths (the golden-digest suite enforces on ≡ off); off
    #: is an escape hatch for debugging and for measuring the speedup.
    fast_kernel: bool = True

    # -- observability ---------------------------------------------------------------------------
    #: Keep a bounded structured event log of protocol events
    #: (request lifecycle, custody movement, region operations).
    enable_event_log: bool = False
    #: Record a per-request causal trace (typed spans on simulated time,
    #: fault tags, JSONL / Chrome trace-event export).  Pure observer:
    #: enabling it never changes run digests.
    enable_tracing: bool = False
    #: Head-based trace sampling probability in [0, 1]: each request is
    #: traced fully with this probability and not at all otherwise,
    #: bounding tracer memory on huge runs.  The decision draws from a
    #: dedicated observer RNG stream, so any rate leaves the run's
    #: digests byte-identical (1.0 = trace everything, draw-free).
    trace_sample_rate: float = 1.0
    #: Sample counters, per-region cache occupancy, and MAC backlog into
    #: a delta-encoded time-series every ``telemetry_interval`` seconds.
    enable_telemetry: bool = False
    #: Simulated seconds between telemetry samples.
    telemetry_interval: float = 5.0
    #: Measure wall-clock self-time of engine dispatch, routing, and
    #: cache replacement (reported, excluded from determinism digests).
    enable_profiling: bool = False
    #: Directory for flight-recorder incident bundles (invariant
    #: violations, failed requests, engine crashes); None disarms the
    #: recorder.
    flight_recorder_dir: Optional[str] = None
    #: Event-log tail length included in each bundle.
    flight_recorder_events: int = 200
    #: Maximum bundles written per run.
    flight_recorder_max_dumps: int = 5
    #: Attribute every energy-ledger debit to its span kind, request
    #: phase, sender region, and packet category
    #: (:class:`repro.energy.attribution.EnergyAttributor`).  Pure
    #: observer: enabling it never changes run digests.
    enable_energy_attribution: bool = False
    #: Telemetry threshold rules ("series>threshold" / "series<threshold"
    #: strings) that fire flight-recorder bundles mid-run; requires
    #: ``enable_telemetry`` (the rules are checked per sampled row).
    anomaly_rules: tuple = ()
    #: Publish each sampled telemetry row to a live
    #: :class:`repro.obs.stream.TelemetryBus` (ring-buffer subscribers,
    #: live sinks).  Implied by any of the three knobs below; implies
    #: telemetry sampling.  Pure fan-out of already-collected rows, so
    #: it never changes run digests.
    enable_stream: bool = False
    #: Append-per-sample JSONL live export (flushed per record, so
    #: ``tail -f`` / ``repro watch --follow`` work mid-run); None
    #: disables.  Implies the stream.
    live_export_path: Optional[str] = None
    #: Prometheus-style text-exposition snapshot file, atomically
    #: rewritten per sample; None disables.  Implies the stream.
    metrics_snapshot_path: Optional[str] = None
    #: Render the live terminal dashboard during the run
    #: (``repro run --watch``).  Implies the stream (and telemetry).
    enable_dashboard: bool = False
    #: Dashboard rendering mode: "auto" (ANSI on a TTY, plain
    #: one-line summaries otherwise), "ansi", or "plain".
    dashboard_mode: str = "auto"
    #: Minimum wall-clock seconds between dashboard repaints.
    watch_interval: float = 1.0

    # -- request resilience (repro.resilience) ---------------------------------------------------
    #: Enable the adaptive request-resilience layer: bounded in-phase
    #: retries with exponential backoff, per-request deadline budgets,
    #: and a per-region failure detector feeding a circuit breaker that
    #: steers requests to the replica while the home region is
    #: suspected.  Off (default) preserves the paper's one-shot
    #: local→home→replica ladder bit-for-bit.
    resilience: bool = False
    #: Retry budget per remote phase (home / replica); 0 disables
    #: in-phase retries.
    resilience_retries: int = 1
    #: Backoff before the first retry (s); doubles per attempt by default.
    resilience_backoff_base: float = 0.5
    #: Backoff multiplier per additional attempt (>= 1).
    resilience_backoff_factor: float = 2.0
    #: Jitter fraction in [0, 1]: each backoff delay is stretched by a
    #: uniform factor in [1, 1 + jitter), drawn from the dedicated
    #: "resilience" RNG stream (0 disables the draw entirely).
    resilience_backoff_jitter: float = 0.1
    #: Total latency budget per request (s): once spent, the request
    #: fails fast instead of serially exhausting the remaining phase
    #: timers.  The default sits just under the full three-phase ladder
    #: of the default timeouts (0.25 + 3 + 3 = 6.25 s), so fail-fast
    #: only trims the exhausted tail and never starves the replica
    #: phase of its window.  None disables deadlines.
    request_deadline: Optional[float] = 6.0
    #: Home-region suspicion threshold: consecutive home-phase timeouts
    #: needed (each +1, α-decayed on success) before the breaker trips.
    resilience_suspect_after: float = 3.0
    #: Suspicion decay factor on success (the α of the paper's eq. 2).
    resilience_alpha: float = 0.5
    #: Open-breaker cool-down before a half-open probe is let through (s).
    resilience_breaker_cooldown: float = 10.0

    # -- fault injection (repro.faults) ----------------------------------------------------------
    #: Declarative fault schedule (message drop/duplicate/delay/reorder,
    #: node crash/recover, region partition/heal), replayed
    #: deterministically from the run's seed.  None disables injection.
    fault_plan: Optional[FaultPlan] = None

    # -- run control --------------------------------------------------------------------------
    duration: float = 2000.0
    #: Statistics (not protocol state) are reset at this time, excluding
    #: cold-start transients from the measurements.
    warmup: float = 200.0
    seed: int = 1

    def __post_init__(self) -> None:
        if self.n_nodes <= 0:
            raise ValueError(f"n_nodes must be positive, got {self.n_nodes}")
        if self.n_regions <= 0:
            raise ValueError(f"n_regions must be positive, got {self.n_regions}")
        if not 0.0 <= self.cache_fraction <= 1.0:
            raise ValueError(f"cache_fraction must be in [0, 1], got {self.cache_fraction}")
        if self.warmup >= self.duration:
            raise ValueError(
                f"warmup ({self.warmup}) must be shorter than duration ({self.duration})"
            )
        if self.replacement_policy not in ("gd-ld", "gd-size", "lru", "lfu"):
            raise ValueError(f"unknown replacement policy {self.replacement_policy!r}")
        if self.consistency not in (
            "none",
            "plain-push",
            "pull-every-time",
            "push-adaptive-pull",
        ):
            raise ValueError(f"unknown consistency scheme {self.consistency!r}")
        if self.mobility_model not in (
            "random-waypoint",
            "manhattan",
            "group",
            "stationary",
        ):
            raise ValueError(f"unknown mobility model {self.mobility_model!r}")
        if not 0.0 <= self.churn_crash_fraction <= 1.0:
            raise ValueError(
                f"churn_crash_fraction must be in [0, 1], got {self.churn_crash_fraction}"
            )
        if self.fault_plan is not None and not isinstance(self.fault_plan, FaultPlan):
            raise ValueError(
                f"fault_plan must be a repro.faults.FaultPlan, got {self.fault_plan!r}"
            )
        if not 0.0 <= self.trace_sample_rate <= 1.0:
            raise ValueError(
                f"trace_sample_rate must be in [0, 1], got {self.trace_sample_rate}"
            )
        if self.telemetry_interval <= 0:
            raise ValueError(
                f"telemetry_interval must be positive, got {self.telemetry_interval}"
            )
        if self.flight_recorder_events <= 0:
            raise ValueError(
                f"flight_recorder_events must be positive, got {self.flight_recorder_events}"
            )
        if self.flight_recorder_max_dumps <= 0:
            raise ValueError(
                f"flight_recorder_max_dumps must be positive, got {self.flight_recorder_max_dumps}"
            )
        if self.resilience_retries < 0:
            raise ValueError(
                f"resilience_retries must be >= 0, got {self.resilience_retries}"
            )
        if self.resilience_backoff_base <= 0:
            raise ValueError(
                f"resilience_backoff_base must be positive, got {self.resilience_backoff_base}"
            )
        if self.resilience_backoff_factor < 1.0:
            raise ValueError(
                f"resilience_backoff_factor must be >= 1, got {self.resilience_backoff_factor}"
            )
        if not 0.0 <= self.resilience_backoff_jitter <= 1.0:
            raise ValueError(
                f"resilience_backoff_jitter must be in [0, 1], got {self.resilience_backoff_jitter}"
            )
        if self.request_deadline is not None and self.request_deadline <= 0:
            raise ValueError(
                f"request_deadline must be positive, got {self.request_deadline}"
            )
        if self.resilience_suspect_after <= 0:
            raise ValueError(
                f"resilience_suspect_after must be positive, got {self.resilience_suspect_after}"
            )
        if not 0.0 <= self.resilience_alpha < 1.0:
            raise ValueError(
                f"resilience_alpha must be in [0, 1), got {self.resilience_alpha}"
            )
        if self.resilience_breaker_cooldown <= 0:
            raise ValueError(
                f"resilience_breaker_cooldown must be positive, got "
                f"{self.resilience_breaker_cooldown}"
            )
        if self.dashboard_mode not in ("auto", "ansi", "plain"):
            raise ValueError(
                f"dashboard_mode must be 'auto', 'ansi', or 'plain', "
                f"got {self.dashboard_mode!r}"
            )
        if self.watch_interval <= 0:
            raise ValueError(
                f"watch_interval must be positive, got {self.watch_interval}"
            )
        if self.anomaly_rules:
            if not (
                self.enable_telemetry
                or self.enable_stream
                or self.enable_dashboard
                or self.live_export_path is not None
                or self.metrics_snapshot_path is not None
            ):
                raise ValueError(
                    "anomaly_rules require enable_telemetry=True (or a "
                    "stream/dashboard knob that implies it) — rules are "
                    "checked against sampled telemetry rows"
                )
            from repro.obs.anomaly import AnomalyRule

            for spec in self.anomaly_rules:
                AnomalyRule.parse(spec)  # raises ValueError on bad specs

    @property
    def cache_capacity_bytes_hint(self) -> float:
        """Approximate per-peer cache capacity implied by cache_fraction.

        The exact value depends on the realized item sizes; the network
        facade computes it from the actual database.  This property uses
        the expected mean item size, for display purposes.
        """
        mean_item = (self.min_item_bytes + self.max_item_bytes) / 2.0
        return self.cache_fraction * mean_item * self.n_items
