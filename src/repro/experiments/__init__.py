"""Experiment drivers reproducing every figure of the paper's evaluation.

Each driver returns plain data structures (lists of result rows) and a
``format_*`` helper that prints them in the same series the paper plots:

========  ================================================  =============
driver    paper figure                                      sweep
========  ================================================  =============
fig4      latency vs cache size (GD-LD vs GD-Size)          cache fraction
fig5      byte hit ratio vs cache size                      cache fraction
fig6      consistency control message overhead              Tupd/Treq
fig7      false hit ratio                                   Tupd/Treq
fig8      latency per request (consistency schemes)         Tupd/Treq
fig9a     energy/request vs node count (theory + sim,       n_nodes
          flooding vs PReCinCt; static 600 m plane)
fig9b     energy/request vs region count (theory + sim)     n_regions
========  ================================================  =============
"""

from repro.experiments.figures import (
    run_fig4_fig5,
    run_fig6_fig7_fig8,
    run_fig9a,
    run_fig9b,
)
from repro.experiments.runner import run_config

__all__ = [
    "run_config",
    "run_fig4_fig5",
    "run_fig6_fig7_fig8",
    "run_fig9a",
    "run_fig9b",
]
