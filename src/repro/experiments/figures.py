"""Per-figure experiment drivers (paper §6).

Every driver takes scale knobs (duration, seeds, sweep points) so the
same code serves both quick CI benchmarks and full paper-scale
regeneration.  Defaults reproduce the paper's settings (§6.1):
80 nodes at 6 m/s for the cache-replacement experiments, request/update
Poisson with 30 s mean, 9 regions, and a static 600 m plane for the
theoretical validation.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Sequence

from repro.analysis.metrics import RunReport
from repro.analysis.theoretical import TheoreticalModel
from repro.baselines import FloodingConfig, FloodingRetrievalNetwork
from repro.config import SimulationConfig
from repro.core.messages import CONTROL_BYTES
from repro.experiments.runner import run_seeds

__all__ = [
    "CacheSweepPoint",
    "ConsistencySweepPoint",
    "EnergyPoint",
    "run_fig4_fig5",
    "run_fig6_fig7_fig8",
    "run_fig9a",
    "run_fig9b",
    "format_cache_sweep",
    "format_consistency_sweep",
    "format_energy_points",
]


@dataclass(frozen=True)
class CacheSweepPoint:
    """One (policy, cache size) cell of Figs. 4-5."""

    policy: str
    cache_fraction: float
    latency: float
    byte_hit_ratio: float
    report: RunReport


@dataclass(frozen=True)
class ConsistencySweepPoint:
    """One (scheme, update ratio) cell of Figs. 6-8."""

    scheme: str
    update_ratio: float
    overhead_messages: float
    false_hit_ratio: float
    latency: float
    report: RunReport


@dataclass(frozen=True)
class EnergyPoint:
    """One x-position of Fig. 9 (both curves + theory).

    ``simulated_mj`` counts the energy categories the paper's analysis
    models (send + receive); ``simulated_total_mj`` additionally counts
    overheard-and-discarded point-to-point traffic, which eqs. 3-13
    ignore.  The theory-vs-simulation validation compares like with
    like, while the total is reported for completeness.
    """

    x: float  # node count (9a) or region count (9b)
    scheme: str  # "precinct" or "flooding"
    simulated_mj: float
    theoretical_mj: float
    simulated_total_mj: float = float("nan")


# ---------------------------------------------------------------------------
# Figs. 4-5: GD-LD vs GD-Size over cache size
# ---------------------------------------------------------------------------

def run_fig4_fig5(
    cache_fractions: Sequence[float] = (0.005, 0.010, 0.015, 0.020, 0.025),
    policies: Sequence[str] = ("gd-size", "gd-ld"),
    n_nodes: int = 80,
    max_speed: float = 6.0,
    duration: float = 1500.0,
    warmup: float = 300.0,
    seeds: Sequence[int] = (1, 2, 3),
    n_items: int = 1000,
    processes: Optional[int] = 1,
) -> List[CacheSweepPoint]:
    """Latency (Fig. 4) and byte hit ratio (Fig. 5) vs cache size.

    Paper setup: 80 nodes at 6 m/s, cache capacity 0.5 %-2.5 % of the
    database size, read-only workload.  ``processes`` fans the seed
    replications of each cell out through the campaign runtime.
    """
    base = SimulationConfig(
        n_nodes=n_nodes,
        max_speed=max_speed,
        duration=duration,
        warmup=warmup,
        n_items=n_items,
        consistency="none",
    )
    points: List[CacheSweepPoint] = []
    for policy in policies:
        for fraction in cache_fractions:
            cfg = replace(
                base, replacement_policy=policy, cache_fraction=fraction
            )
            report = run_seeds(
                cfg, seeds, f"{policy}@{fraction:.3%}", processes=processes
            )
            points.append(
                CacheSweepPoint(
                    policy=policy,
                    cache_fraction=fraction,
                    latency=report.average_latency,
                    byte_hit_ratio=report.byte_hit_ratio,
                    report=report,
                )
            )
    return points


def format_cache_sweep(points: List[CacheSweepPoint]) -> str:
    """Rows in the shape of Figs. 4-5: one line per (policy, size)."""
    lines = [
        f"{'policy':<10} {'cache%':>7} {'latency(s)':>11} {'byte-hit':>9}"
    ]
    for p in points:
        lines.append(
            f"{p.policy:<10} {100 * p.cache_fraction:>6.2f}% "
            f"{p.latency:>11.4f} {p.byte_hit_ratio:>9.4f}"
        )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Figs. 6-8: consistency schemes over the update rate
# ---------------------------------------------------------------------------

def run_fig6_fig7_fig8(
    update_ratios: Sequence[float] = (1.0, 2.0, 3.0, 4.0, 5.0),
    schemes: Sequence[str] = ("plain-push", "pull-every-time", "push-adaptive-pull"),
    n_nodes: int = 80,
    max_speed: float = 6.0,
    duration: float = 1500.0,
    warmup: float = 300.0,
    seeds: Sequence[int] = (1, 2, 3),
    n_items: int = 1000,
    t_request: float = 30.0,
    processes: Optional[int] = 1,
) -> List[ConsistencySweepPoint]:
    """Control message overhead (Fig. 6), false hit ratio (Fig. 7) and
    latency (Fig. 8) vs ``Tupdate / Trequest``.

    ``Trequest`` is fixed at 30 s; a ratio of 1 is the hottest update
    rate (paper §6.2.2).
    """
    base = SimulationConfig(
        n_nodes=n_nodes,
        max_speed=max_speed,
        duration=duration,
        warmup=warmup,
        n_items=n_items,
        t_request=t_request,
        cache_fraction=0.02,
    )
    points: List[ConsistencySweepPoint] = []
    for scheme in schemes:
        for ratio in update_ratios:
            cfg = replace(
                base, consistency=scheme, t_update=t_request * ratio
            )
            report = run_seeds(
                cfg, seeds, f"{scheme}@ratio{ratio:g}", processes=processes
            )
            points.append(
                ConsistencySweepPoint(
                    scheme=scheme,
                    update_ratio=ratio,
                    overhead_messages=report.consistency_messages,
                    false_hit_ratio=report.false_hit_ratio,
                    latency=report.average_latency,
                    report=report,
                )
            )
    return points


def format_consistency_sweep(points: List[ConsistencySweepPoint]) -> str:
    lines = [
        f"{'scheme':<20} {'Tupd/Treq':>9} {'overhead':>10} {'FHR':>9} {'latency(s)':>11}"
    ]
    for p in points:
        lines.append(
            f"{p.scheme:<20} {p.update_ratio:>9.1f} {p.overhead_messages:>10.0f} "
            f"{p.false_hit_ratio:>9.6f} {p.latency:>11.4f}"
        )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Fig. 9: theoretical validation on a static topology
# ---------------------------------------------------------------------------

def _static_config(
    n_nodes: int, n_regions: int, duration: float, warmup: float, seed: int, n_items: int
) -> SimulationConfig:
    """The §6.2.3 setting: static 600 m x 600 m, no caching, no updates."""
    return SimulationConfig(
        width=600.0,
        height=600.0,
        n_nodes=n_nodes,
        n_regions=n_regions,
        max_speed=None,
        enable_cache=False,
        consistency="none",
        duration=duration,
        warmup=warmup,
        n_items=n_items,
        seed=seed,
    )


def _theory(cfg: SimulationConfig) -> TheoreticalModel:
    mean_item = (cfg.min_item_bytes + cfg.max_item_bytes) / 2.0
    return TheoreticalModel(
        area_side=cfg.width,
        range_m=cfg.range_m,
        request_bytes=CONTROL_BYTES,
        response_bytes=CONTROL_BYTES + mean_item,
    )


def _energy_split(cfg: SimulationConfig, seeds: Sequence[int], flooding: bool):
    """Run either scheme over seeds; return (modeled_mJ, total_mJ) per
    served request.  "Modeled" excludes the overheard-discard category,
    which the paper's closed-form analysis does not account for."""
    modeled_uj = 0.0
    total_uj = 0.0
    served = 0
    for seed in seeds:
        scfg = replace(cfg, seed=seed)
        if flooding:
            net = FloodingRetrievalNetwork(scfg, FloodingConfig())
            report = net.run()
            ledger = net.network.energy
        else:
            from repro.core.network import PReCinCtNetwork

            pnet = PReCinCtNetwork(scfg)
            report = pnet.run()
            ledger = pnet.network.energy
        by_cat = ledger.total_by_category()
        total_uj += sum(by_cat.values())
        modeled_uj += sum(v for k, v in by_cat.items() if k != "discard")
        served += report.requests_served
    if served == 0:
        return float("nan"), float("nan")
    return modeled_uj / served / 1000.0, total_uj / served / 1000.0


def run_fig9a(
    node_counts: Sequence[int] = (20, 40, 60, 80),
    n_regions: int = 9,
    duration: float = 1200.0,
    warmup: float = 200.0,
    seeds: Sequence[int] = (1, 2),
    n_items: int = 300,
) -> List[EnergyPoint]:
    """Fig. 9(a): energy per request vs node count — flooding vs
    PReCinCt, simulation vs closed-form theory."""
    points: List[EnergyPoint] = []
    for n in node_counts:
        cfg = _static_config(n, n_regions, duration, warmup, seeds[0], n_items)
        theory = _theory(cfg)
        sim_mj, sim_total = _energy_split(cfg, seeds, flooding=False)
        points.append(
            EnergyPoint(
                x=n,
                scheme="precinct",
                simulated_mj=sim_mj,
                theoretical_mj=theory.precinct_energy_mj(n, n_regions),
                simulated_total_mj=sim_total,
            )
        )
        sim_mj, sim_total = _energy_split(cfg, seeds, flooding=True)
        points.append(
            EnergyPoint(
                x=n,
                scheme="flooding",
                simulated_mj=sim_mj,
                theoretical_mj=theory.flooding_energy_mj(n),
                simulated_total_mj=sim_total,
            )
        )
    return points


def run_fig9b(
    region_counts: Sequence[int] = (4, 9, 16, 25),
    n_nodes: int = 20,
    duration: float = 1200.0,
    warmup: float = 200.0,
    seeds: Sequence[int] = (1, 2),
    n_items: int = 300,
) -> List[EnergyPoint]:
    """Fig. 9(b): PReCinCt energy per request vs region count, 20 nodes."""
    points: List[EnergyPoint] = []
    for n_regions in region_counts:
        cfg = _static_config(n_nodes, n_regions, duration, warmup, seeds[0], n_items)
        theory = _theory(cfg)
        sim_mj, sim_total = _energy_split(cfg, seeds, flooding=False)
        points.append(
            EnergyPoint(
                x=n_regions,
                scheme="precinct",
                simulated_mj=sim_mj,
                theoretical_mj=theory.precinct_energy_mj(n_nodes, n_regions),
                simulated_total_mj=sim_total,
            )
        )
    return points


def format_energy_points(points: List[EnergyPoint], x_name: str = "x") -> str:
    lines = [
        f"{'scheme':<10} {x_name:>8} {'sim(mJ)':>10} {'theory(mJ)':>11} "
        f"{'sim+overhear(mJ)':>17}"
    ]
    for p in points:
        lines.append(
            f"{p.scheme:<10} {p.x:>8.0f} {p.simulated_mj:>10.3f} "
            f"{p.theoretical_mj:>11.3f} {p.simulated_total_mj:>17.3f}"
        )
    return "\n".join(lines)
