"""Run helpers shared by the experiment drivers and benchmarks."""

from __future__ import annotations

from dataclasses import replace
from typing import List, Optional, Sequence

from repro.analysis.metrics import RunReport
from repro.config import SimulationConfig
from repro.core.network import PReCinCtNetwork

__all__ = ["run_config", "run_seeds", "average_reports"]


def run_config(cfg: SimulationConfig, label: Optional[str] = None) -> RunReport:
    """Build, run, and report one PReCinCt simulation."""
    net = PReCinCtNetwork(cfg)
    report = net.run()
    if label is not None:
        report = replace_label(report, label)
    return report


def replace_label(report: RunReport, label: str) -> RunReport:
    from dataclasses import replace as dc_replace

    return dc_replace(report, config_label=label)


def run_seeds(
    cfg: SimulationConfig,
    seeds: Sequence[int],
    label: str,
    processes: Optional[int] = 1,
) -> RunReport:
    """Run the same configuration over several seeds and average.

    Averaging across independent replications is how the paper's curves
    are produced; counters are summed, ratios and latencies averaged.
    Replications are independent simulations, so ``processes > 1`` fans
    them out through the campaign runtime's contained process pool.
    """
    from repro.experiments.sweeps import run_sweep

    cells = [replace(cfg, seed=seed) for seed in seeds]
    reports = [report for _, report in run_sweep(cells, processes=processes)]
    return average_reports(reports, label)


def average_reports(reports: List[RunReport], label: str) -> RunReport:
    if not reports:
        raise ValueError("need at least one report to average")
    n = len(reports)

    def mean(attr: str) -> float:
        return sum(getattr(r, attr) for r in reports) / n

    merged_classes = {}
    for r in reports:
        for cls, count in r.served_by_class.items():
            merged_classes[cls] = merged_classes.get(cls, 0) + count
    return RunReport(
        config_label=label,
        duration=reports[0].duration,
        requests_issued=int(sum(r.requests_issued for r in reports)),
        requests_served=int(sum(r.requests_served for r in reports)),
        requests_failed=int(sum(r.requests_failed for r in reports)),
        updates_issued=int(sum(r.updates_issued for r in reports)),
        average_latency=mean("average_latency"),
        byte_hit_ratio=mean("byte_hit_ratio"),
        false_hit_ratio=mean("false_hit_ratio"),
        consistency_messages=mean("consistency_messages"),
        total_messages=mean("total_messages"),
        energy_total_uj=mean("energy_total_uj") * n,  # keep per-request math exact
        served_by_class=merged_classes,
    )
