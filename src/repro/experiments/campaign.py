"""Experiment campaigns: named, persistent, resumable sweeps.

A :class:`Campaign` bundles a set of labelled configurations, runs them
through the campaign orchestrator
(:mod:`repro.experiments.orchestrator`), persists every result to a
JSON store **as it completes** — a campaign killed at cell 99/100
keeps 99 results — and *resumes*: cells whose label already exists in
the store are skipped on the next invocation, and cells with a
committed orchestrator artifact are digest-verified and reused.

::

    campaign = Campaign("cache-study", store_dir="results")
    for policy in ("gd-ld", "gd-size"):
        for fraction in (0.005, 0.015, 0.025):
            campaign.add(
                f"{policy}@{fraction:.3f}",
                replace(base, replacement_policy=policy,
                        cache_fraction=fraction),
            )
    reports = campaign.run(processes=4)
    print(campaign.summary())
"""

from __future__ import annotations

import tempfile
from dataclasses import replace
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.analysis.compare import compare_reports
from repro.analysis.metrics import RunReport
from repro.config import SimulationConfig
from repro.experiments.orchestrator import (
    InProcessRunner,
    PoolRunner,
    RunGraph,
    Runtime,
    execute_graph,
    slugify,
)
from repro.experiments.report_io import reports_from_json, reports_to_json

__all__ = ["Campaign"]


class Campaign:
    """A named collection of labelled simulation cells."""

    def __init__(self, name: str, store_dir: Optional[str] = None):
        if not name or "/" in name:
            raise ValueError(f"invalid campaign name {name!r}")
        self.name = name
        self.store_path: Optional[Path] = (
            Path(store_dir) / f"{name}.json" if store_dir is not None else None
        )
        self._cells: List[Tuple[str, SimulationConfig]] = []
        self._results: Dict[str, RunReport] = {}
        if self.store_path is not None and self.store_path.exists():
            for report in reports_from_json(self.store_path):
                self._results[report.config_label] = report

    # -- building ------------------------------------------------------------

    def add(self, label: str, cfg: SimulationConfig) -> None:
        """Register one cell.  Labels must be unique within a campaign."""
        if any(l == label for l, _ in self._cells):
            raise ValueError(f"duplicate cell label {label!r}")
        self._cells.append((label, cfg))

    def __len__(self) -> int:
        return len(self._cells)

    @property
    def completed(self) -> List[str]:
        return [l for l, _ in self._cells if l in self._results]

    @property
    def pending(self) -> List[str]:
        return [l for l, _ in self._cells if l not in self._results]

    @property
    def campaign_dir(self) -> Optional[Path]:
        """Orchestrator root (journal + per-cell artifacts) when stored."""
        if self.store_path is None:
            return None
        return self.store_path.parent / f"{self.name}.campaign"

    # -- execution --------------------------------------------------------------

    def _graph(self) -> Tuple[RunGraph, Dict[str, str]]:
        """Run-graph of the pending cells + job-id → label mapping."""
        graph = RunGraph()
        labels: Dict[str, str] = {}
        for label, cfg in self._cells:
            if label in self._results:
                continue
            job_id = slugify(label)
            suffix = 2
            while job_id in graph:
                job_id = f"{slugify(label)}-{suffix}"
                suffix += 1
            graph.add(job_id, cfg)
            labels[job_id] = label
        return graph, labels

    def run(
        self,
        processes: Optional[int] = 1,
        runner: Optional[Runtime] = None,
        max_cells: Optional[int] = None,
    ) -> List[RunReport]:
        """Run pending cells; return completed cells' reports, in order.

        Every cell's report is persisted to the store (when configured)
        **the moment the cell completes** — the orchestrator journals
        each transition and commits per-cell artifacts, so an
        interrupted campaign resumes with everything finished so far.

        ``runner`` overrides the default choice (``processes <= 1`` →
        in-process, otherwise a contained process pool).  ``max_cells``
        stops after that many cells (the deterministic interrupt used
        by the crash-and-resume tests); a cell that *fails* raises
        ``RuntimeError`` after the surviving cells were persisted.
        """
        graph, labels = self._graph()
        if len(graph):
            if runner is None:
                runner = (
                    InProcessRunner()
                    if processes is not None and processes <= 1
                    else PoolRunner(processes=processes)
                )

            def persist_result(result) -> None:
                if result.status != "done":
                    return
                label = labels[result.job_id]
                self._results[label] = replace(
                    result.report, config_label=label
                )
                self._persist()

            root = self.campaign_dir
            if root is None:
                # Store-less campaigns still run through the runtime —
                # artifacts land in a throwaway root.
                with tempfile.TemporaryDirectory(prefix="repro-campaign-") as tmp:
                    summary = execute_graph(
                        graph, runner, tmp, name=self.name,
                        max_jobs=max_cells, on_result=persist_result,
                    )
            else:
                summary = execute_graph(
                    graph, runner, root, name=self.name,
                    max_jobs=max_cells, on_result=persist_result,
                )
                # Artifacts verified on resume never reach on_result;
                # fold them into the store too.
                for job_id, report in summary.reports.items():
                    label = labels[job_id]
                    if label not in self._results:
                        self._results[label] = replace(
                            report, config_label=label
                        )
                self._persist()
            if summary.errors:
                failures = ", ".join(
                    f"{labels[j]}: {summary.statuses[j]}"
                    for j in sorted(summary.errors)
                )
                raise RuntimeError(
                    f"campaign {self.name!r}: {len(summary.errors)} "
                    f"cell(s) failed — {failures}"
                )
        return [
            self._results[label]
            for label, _ in self._cells
            if label in self._results
        ]

    def _persist(self) -> None:
        if self.store_path is None:
            return
        self.store_path.parent.mkdir(parents=True, exist_ok=True)
        ordered = [
            self._results[label]
            for label, _ in self._cells
            if label in self._results
        ]
        # Keep results for cells removed from the definition too.
        extras = [
            r
            for label, r in self._results.items()
            if label not in {l for l, _ in self._cells}
        ]
        reports_to_json(ordered + extras, self.store_path)

    # -- reporting -----------------------------------------------------------------

    def report(self, label: str) -> RunReport:
        return self._results[label]

    def summary(self, baseline: int = 0) -> str:
        """Comparison table of all completed cells."""
        done = [
            (label, self._results[label])
            for label, _ in self._cells
            if label in self._results
        ]
        if not done:
            return f"campaign {self.name!r}: no completed cells"
        labels = [l for l, _ in done]
        reports = [r for _, r in done]
        return compare_reports(reports, labels=labels, baseline=baseline)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Campaign({self.name!r}, cells={len(self._cells)}, "
            f"completed={len(self.completed)})"
        )
