"""Experiment campaigns: named, persistent, resumable sweeps.

A :class:`Campaign` bundles a set of labelled configurations, runs them
(optionally in parallel), persists every result to a JSON store as it
completes, and — crucially for long sweeps — *resumes*: cells whose
label already exists in the store are skipped on the next invocation.

::

    campaign = Campaign("cache-study", store_dir="results")
    for policy in ("gd-ld", "gd-size"):
        for fraction in (0.005, 0.015, 0.025):
            campaign.add(
                f"{policy}@{fraction:.3f}",
                replace(base, replacement_policy=policy,
                        cache_fraction=fraction),
            )
    reports = campaign.run(processes=4)
    print(campaign.summary())
"""

from __future__ import annotations

import json
from dataclasses import replace
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.analysis.compare import compare_reports
from repro.analysis.metrics import RunReport
from repro.config import SimulationConfig
from repro.experiments.report_io import reports_from_json, reports_to_json
from repro.experiments.sweeps import run_sweep

__all__ = ["Campaign"]


class Campaign:
    """A named collection of labelled simulation cells."""

    def __init__(self, name: str, store_dir: Optional[str] = None):
        if not name or "/" in name:
            raise ValueError(f"invalid campaign name {name!r}")
        self.name = name
        self.store_path: Optional[Path] = (
            Path(store_dir) / f"{name}.json" if store_dir is not None else None
        )
        self._cells: List[Tuple[str, SimulationConfig]] = []
        self._results: Dict[str, RunReport] = {}
        if self.store_path is not None and self.store_path.exists():
            for report in reports_from_json(self.store_path):
                self._results[report.config_label] = report

    # -- building ------------------------------------------------------------

    def add(self, label: str, cfg: SimulationConfig) -> None:
        """Register one cell.  Labels must be unique within a campaign."""
        if any(l == label for l, _ in self._cells):
            raise ValueError(f"duplicate cell label {label!r}")
        self._cells.append((label, cfg))

    def __len__(self) -> int:
        return len(self._cells)

    @property
    def completed(self) -> List[str]:
        return [l for l, _ in self._cells if l in self._results]

    @property
    def pending(self) -> List[str]:
        return [l for l, _ in self._cells if l not in self._results]

    # -- execution --------------------------------------------------------------

    def run(self, processes: Optional[int] = 1) -> List[RunReport]:
        """Run all pending cells; return every cell's report, in order.

        Results are persisted to the store (when configured) after the
        batch completes, labelled with their cell labels.
        """
        todo = [(label, cfg) for label, cfg in self._cells if label not in self._results]
        if todo:
            results = run_sweep([cfg for _, cfg in todo], processes=processes)
            for (label, _cfg), (_cfg2, report) in zip(todo, results):
                self._results[label] = replace(report, config_label=label)
            self._persist()
        return [self._results[label] for label, _ in self._cells]

    def _persist(self) -> None:
        if self.store_path is None:
            return
        self.store_path.parent.mkdir(parents=True, exist_ok=True)
        ordered = [
            self._results[label]
            for label, _ in self._cells
            if label in self._results
        ]
        # Keep results for cells removed from the definition too.
        extras = [
            r
            for label, r in self._results.items()
            if label not in {l for l, _ in self._cells}
        ]
        reports_to_json(ordered + extras, self.store_path)

    # -- reporting -----------------------------------------------------------------

    def report(self, label: str) -> RunReport:
        return self._results[label]

    def summary(self, baseline: int = 0) -> str:
        """Comparison table of all completed cells."""
        done = [
            (label, self._results[label])
            for label, _ in self._cells
            if label in self._results
        ]
        if not done:
            return f"campaign {self.name!r}: no completed cells"
        labels = [l for l, _ in done]
        reports = [r for _, r in done]
        return compare_reports(reports, labels=labels, baseline=baseline)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Campaign({self.name!r}, cells={len(self._cells)}, "
            f"completed={len(self.completed)})"
        )
