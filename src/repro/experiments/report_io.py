"""Saving and loading experiment results.

Campaigns produce lists of :class:`RunReport`; these helpers persist
them as JSON (lossless, nested) or CSV (flat, spreadsheet-friendly) and
load them back, so sweeps can be analyzed without re-simulation.
"""

from __future__ import annotations

import csv
import json
from dataclasses import asdict
from pathlib import Path
from typing import Iterable, List, Union

from repro.analysis.metrics import RunReport

__all__ = ["reports_to_json", "reports_from_json", "reports_to_csv"]

PathLike = Union[str, Path]

#: Flat scalar columns exported to CSV (dict fields are flattened).
_SCALAR_FIELDS = (
    "config_label",
    "duration",
    "requests_issued",
    "requests_served",
    "requests_failed",
    "updates_issued",
    "average_latency",
    "latency_p50",
    "latency_p95",
    "latency_p99",
    "byte_hit_ratio",
    "false_hit_ratio",
    "consistency_messages",
    "total_messages",
    "energy_total_uj",
)


def reports_to_json(reports: Iterable[RunReport], path: PathLike) -> None:
    """Serialize reports to a JSON file (lossless round trip)."""
    payload = [asdict(report) for report in reports]
    Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True))


def reports_from_json(path: PathLike) -> List[RunReport]:
    """Load reports saved by :func:`reports_to_json`."""
    payload = json.loads(Path(path).read_text())
    if not isinstance(payload, list):
        raise ValueError(f"{path}: expected a JSON list of reports")
    reports = []
    for item in payload:
        served = item.get("served_by_class", {})
        item["served_by_class"] = {str(k): int(v) for k, v in served.items()}
        reports.append(RunReport(**item))
    return reports


def reports_to_csv(reports: Iterable[RunReport], path: PathLike) -> None:
    """Flatten reports into a CSV table.

    ``served_by_class`` becomes ``served_<class>`` columns and ``extra``
    entries become their own columns; derived metrics
    (``energy_per_request_mj``, ``delivery_ratio``) are included for
    convenience.
    """
    reports = list(reports)
    serve_classes = sorted({cls for r in reports for cls in r.served_by_class})
    extra_keys = sorted({k for r in reports for k in r.extra})
    header = (
        list(_SCALAR_FIELDS)
        + ["energy_per_request_mj", "delivery_ratio"]
        + [f"served_{cls}" for cls in serve_classes]
        + extra_keys
    )
    with open(path, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(header)
        for r in reports:
            row = [getattr(r, name) for name in _SCALAR_FIELDS]
            row += [r.energy_per_request_mj, r.delivery_ratio]
            row += [r.served_by_class.get(cls, 0) for cls in serve_classes]
            row += [r.extra.get(k, "") for k in extra_keys]
            writer.writerow(row)
