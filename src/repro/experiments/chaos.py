"""Chaos cells: hostile-plan simulations as orchestrator jobs.

``scripts/chaos_smoke.py`` used to run its two modes (resilience off /
on) inline; they are now ordinary campaign jobs with a custom entry
point (:func:`run_chaos_cell`) so the chaos matrix schedules onto the
same journaled, resumable runtime as every other sweep — and the two
modes run in parallel under a :class:`PoolRunner`.

The entry runs one traced simulation, writes the full request trace to
``trace.jsonl`` in the job's artifact directory, and folds the chaos
verdict inputs (failure rate, p95 failure-detection latency, the
``resilience.*`` counters) into the report's ``extra`` map so the gate
needs nothing but committed artifacts.
"""

from __future__ import annotations

from dataclasses import replace
from pathlib import Path
from typing import Iterable

from repro.analysis.metrics import RunReport
from repro.config import SimulationConfig
from repro.faults.plan import FaultPlan

__all__ = ["CHAOS_ENTRY", "HOSTILE_PLAN", "chaos_config", "p95", "run_chaos_cell"]

#: The hostile composite plan: a long response-drop regime, a mid-run
#: multi-node crash, and a partition window isolating region 0.
HOSTILE_PLAN = (
    "drop:p=0.35,category=response,start=30",
    "crash:at=50,nodes=3+11+19",
    "partition:start=90,end=150,regions=0",
)

#: Entry-point string for chaos jobs.
CHAOS_ENTRY = "repro.experiments.chaos:run_chaos_cell"


def p95(values: Iterable[float]) -> float:
    """p95 by the nearest-rank method; 0.0 for an empty sample."""
    ordered = sorted(values)
    if not ordered:
        return 0.0
    rank = max(0, min(len(ordered) - 1, round(0.95 * len(ordered)) - 1))
    return float(ordered[rank])


def chaos_config(
    resilience: bool, seed: int, duration: float
) -> SimulationConfig:
    """One chaos mode as a plain config (the job spec's payload)."""
    return SimulationConfig(
        n_nodes=30,
        n_items=80,
        width=600.0,
        height=600.0,
        duration=duration,
        warmup=20.0,
        t_request=10.0,
        t_update=40.0,
        seed=seed,
        consistency="push-adaptive-pull",
        fault_plan=FaultPlan.parse(HOSTILE_PLAN),
        resilience=resilience,
    )


def run_chaos_cell(cfg: SimulationConfig, artifact_dir: Path) -> RunReport:
    """Orchestrator entry: one traced hostile run + chaos metrics."""
    from repro.core.network import PReCinCtNetwork
    from repro.obs import Observers

    net = PReCinCtNetwork(cfg, observers=Observers(tracing=True))
    report = net.run()
    net.tracer.to_jsonl(Path(artifact_dir) / "trace.jsonl")

    fail_latencies = [t.latency for t in net.tracer.completed("failed")]
    extra = dict(report.extra)
    extra["chaos.failure_rate"] = (
        report.requests_failed / report.requests_issued
        if report.requests_issued
        else 0.0
    )
    extra["chaos.p95_failure_detection_latency_s"] = p95(fail_latencies)
    for name, value in sorted(net.stats.counters().items()):
        if name.startswith("resilience."):
            extra[f"chaos.{name}"] = float(value)
    return replace(report, extra=extra)
