"""Event-kernel microbenchmarks (`repro bench`).

Measures raw simulation throughput — events/sec and requests/sec — on
pinned scenarios, under both the fast kernel (``fast_kernel=True``, the
default vectorized/cached paths) and the reference kernel
(``fast_kernel=False``, the scalar escape hatch the golden-digest
equivalence suite diffs against).  Because both kernels replay the exact
same logical event sequence (the equivalence tests enforce bit-identical
digests), ``events_executed`` is directly comparable and the
fast/reference ratio is a machine-independent speedup measure.

Results are written as ``benchmarks/perf/BENCH_NNNN.json`` records; the
committed sequence of those files is the *benchmark trajectory*, gated
by ``scripts/perf_gate.py --bench`` so the fast kernel's advantage can
only be regressed deliberately.

The pinned scenarios:

* ``kernel`` — the headline: 60 mobile nodes, 9 regions, mixed
  request/update workload under push-adaptive-pull consistency with 1 s
  GPSR HELLO beaconing.  Broadcast-heavy and planarization-heavy, which
  is exactly what the vectorized kernel accelerates.
* ``audit`` — the golden-audit baseline scenario (20 nodes, event log
  on): small, eventlog-bound, keeps the bench honest on bookkeeping
  overhead.

Scenario parameters are frozen: editing them invalidates the committed
trajectory, so add a new scenario (and start a fresh trajectory) rather
than retuning an existing one.
"""

from __future__ import annotations

import json
import os
import platform
import time
from dataclasses import replace
from typing import Dict, List, Optional

from repro.config import SimulationConfig

__all__ = [
    "BENCH_SCENARIOS",
    "bench_scenario",
    "run_bench",
    "format_bench",
]

#: Pinned benchmark scenarios.  Frozen — see module docstring.
BENCH_SCENARIOS: Dict[str, SimulationConfig] = {
    "kernel": SimulationConfig(
        n_nodes=60,
        n_items=240,
        width=1200.0,
        height=1200.0,
        n_regions=9,
        max_speed=6.0,
        duration=120.0,
        warmup=20.0,
        t_request=10.0,
        t_update=60.0,
        consistency="push-adaptive-pull",
        cache_fraction=0.05,
        gpsr_beacon_interval=1.0,
        seed=7,
    ),
    "audit": SimulationConfig(
        n_nodes=20,
        n_items=60,
        width=600.0,
        height=600.0,
        n_regions=4,
        max_speed=4.0,
        duration=80.0,
        warmup=10.0,
        t_request=15.0,
        t_update=40.0,
        consistency="push-adaptive-pull",
        cache_fraction=0.1,
        enable_event_log=True,
        seed=42,
    ),
}

#: Quick mode shrinks virtual duration by this factor (CI smoke runs).
QUICK_FACTOR = 4.0


def _measure(cfg: SimulationConfig, repeats: int) -> Dict[str, float]:
    """Run ``cfg`` ``repeats`` times; report the best (least-noise) run."""
    from repro.core.network import PReCinCtNetwork

    best: Optional[Dict[str, float]] = None
    for _ in range(repeats):
        net = PReCinCtNetwork(cfg)
        t0 = time.perf_counter()
        report = net.run()
        wall_s = time.perf_counter() - t0
        rec = {
            "wall_s": wall_s,
            "events": int(net.sim.events_executed),
            "events_per_s": net.sim.events_executed / wall_s,
            "requests": int(report.requests_issued),
            "requests_per_s": report.requests_issued / wall_s,
        }
        if best is None or rec["wall_s"] < best["wall_s"]:
            best = rec
    return best


def bench_scenario(
    name: str,
    quick: bool = False,
    repeats: int = 3,
    reference: bool = True,
) -> Dict[str, object]:
    """Benchmark one pinned scenario under fast and reference kernels."""
    cfg = BENCH_SCENARIOS[name]
    if quick:
        factor = QUICK_FACTOR
        cfg = replace(
            cfg,
            duration=cfg.duration / factor,
            warmup=cfg.warmup / factor,
        )
    out: Dict[str, object] = {
        "config": {
            "n_nodes": cfg.n_nodes,
            "duration": cfg.duration,
            "seed": cfg.seed,
            "quick": quick,
            "repeats": repeats,
        },
        "fast": _measure(replace(cfg, fast_kernel=True), repeats),
    }
    if reference:
        out["reference"] = _measure(replace(cfg, fast_kernel=False), repeats)
        out["speedup"] = out["fast"]["events_per_s"] / out["reference"]["events_per_s"]
    return out


def run_bench(
    scenarios: Optional[List[str]] = None,
    quick: bool = False,
    repeats: int = 3,
    reference: bool = True,
    bench_id: Optional[str] = None,
) -> Dict[str, object]:
    """Run the benchmark suite; returns the ``BENCH_*.json`` payload."""
    names = list(BENCH_SCENARIOS) if scenarios is None else scenarios
    unknown = [n for n in names if n not in BENCH_SCENARIOS]
    if unknown:
        raise ValueError(
            f"unknown bench scenario(s) {unknown}; known: {sorted(BENCH_SCENARIOS)}"
        )
    payload: Dict[str, object] = {
        "schema": 1,
        "bench_id": bench_id,
        "quick": quick,
        # Wall-clock numbers are meaningless without knowing what ran
        # them: trajectory comparisons must check the host matches.
        "host": {
            "python": platform.python_version(),
            "implementation": platform.python_implementation(),
            "platform": platform.platform(),
            "machine": platform.machine(),
            "cpu_count": os.cpu_count(),
        },
        "scenarios": {n: bench_scenario(n, quick=quick, repeats=repeats,
                                        reference=reference) for n in names},
    }
    return payload


def format_bench(payload: Dict[str, object]) -> str:
    """Human-readable table of one bench payload."""
    lines = [
        f"{'scenario':<10} {'kernel':<10} {'wall':>8} {'events':>9} "
        f"{'ev/s':>10} {'req/s':>8} {'speedup':>8}"
    ]
    for name, rec in payload["scenarios"].items():
        speedup = rec.get("speedup")
        for kernel in ("fast", "reference"):
            m = rec.get(kernel)
            if m is None:
                continue
            tag = f"{speedup:7.2f}x" if kernel == "fast" and speedup else ""
            lines.append(
                f"{name:<10} {kernel:<10} {m['wall_s']:>7.3f}s {m['events']:>9,} "
                f"{m['events_per_s']:>10,.0f} {m['requests_per_s']:>8,.1f} {tag:>8}"
            )
    return "\n".join(lines)


def write_bench(payload: Dict[str, object], path) -> None:
    """Write a bench payload as pretty-printed JSON."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
