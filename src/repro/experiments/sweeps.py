"""Parallel parameter sweeps.

Experiment campaigns are embarrassingly parallel: every
(:class:`SimulationConfig`, seed) cell is an independent simulation.
:func:`run_sweep` fans cells out through the campaign orchestrator's
pluggable runtimes (:mod:`repro.experiments.orchestrator`) — an
in-process runner for serial runs, a contained process pool otherwise —
and reassembles results in submission order.

Design notes (per the HPC guides):

* work units are *whole simulations*, coarse enough that IPC cost
  (one frozen config in, one report out) is negligible;
* the worker is a module-level function so it pickles under the
  default ``spawn`` start method;
* determinism is preserved: results are keyed by cell, not by
  completion order, so a parallel sweep equals the serial one;
* pass ``artifact_dir`` to keep the orchestrator's journal and
  per-cell artifacts (resumable, digest-verified); by default they
  land in a throwaway directory.

Example
-------
>>> from dataclasses import replace
>>> from repro.config import SimulationConfig
>>> from repro.experiments.sweeps import sweep_grid
>>> base = SimulationConfig(n_nodes=24, width=800, height=800,
...                         duration=120.0, warmup=20.0, n_items=100)
>>> cells = sweep_grid(base, cache_fraction=[0.01, 0.02], seed=[1, 2])
>>> len(cells)
4
"""

from __future__ import annotations

import itertools
import tempfile
from dataclasses import replace
from typing import List, Optional, Sequence, Tuple

from repro.analysis.metrics import RunReport
from repro.config import SimulationConfig
from repro.faults.plan import FaultPlan

__all__ = ["fault_sweep", "run_sweep", "sweep_grid", "SweepResult"]


SweepResult = Tuple[SimulationConfig, RunReport]


def _run_cell(cfg: SimulationConfig) -> RunReport:
    """Worker: one full simulation (module-level for picklability)."""
    from repro.core.network import PReCinCtNetwork

    return PReCinCtNetwork(cfg).run()


def sweep_grid(base: SimulationConfig, **axes: Sequence) -> List[SimulationConfig]:
    """Cartesian-product configurations from a base and axis values.

    ``sweep_grid(base, cache_fraction=[0.01, 0.02], seed=[1, 2, 3])``
    yields the 6 combinations, varying the named fields of ``base``.
    """
    if not axes:
        return [base]
    names = sorted(axes)
    cells = []
    for combo in itertools.product(*(axes[name] for name in names)):
        cells.append(replace(base, **dict(zip(names, combo))))
    return cells


def run_sweep(
    configs: Sequence[SimulationConfig],
    processes: Optional[int] = None,
    runner=None,
    artifact_dir=None,
) -> List[SweepResult]:
    """Run every configuration; return (config, report) pairs in order.

    ``processes=None`` uses the pool default (CPU count); ``0`` or
    ``1`` runs serially in-process (useful under debuggers and for
    deterministic profiling).  ``runner`` overrides the choice with any
    :class:`~repro.experiments.orchestrator.Runtime`; ``artifact_dir``
    keeps the orchestrator journal + per-cell artifact tree (the sweep
    becomes resumable: re-running with the same directory digest-
    verifies and reuses completed cells).
    """
    from repro.experiments.orchestrator import (
        InProcessRunner,
        PoolRunner,
        RunGraph,
        execute_graph,
    )

    configs = list(configs)
    if not configs:
        return []
    if runner is None:
        runner = (
            InProcessRunner()
            if processes is not None and processes <= 1
            else PoolRunner(processes=processes)
        )
    graph = RunGraph()
    job_ids = []
    for index, cfg in enumerate(configs):
        job_id = f"cell-{index:04d}"
        graph.add(job_id, cfg)
        job_ids.append(job_id)

    def _execute(root) -> List[SweepResult]:
        summary = execute_graph(graph, runner, root, name="sweep")
        if summary.errors:
            failures = "; ".join(
                f"{job}: {error.splitlines()[0]}"
                for job, error in sorted(summary.errors.items())
            )
            raise RuntimeError(f"sweep failed — {failures}")
        return [
            (cfg, summary.reports[job_id])
            for cfg, job_id in zip(configs, job_ids)
        ]

    if artifact_dir is not None:
        return _execute(artifact_dir)
    with tempfile.TemporaryDirectory(prefix="repro-sweep-") as tmp:
        return _execute(tmp)


def fault_sweep(
    base: SimulationConfig,
    plans: Sequence[Optional[FaultPlan]],
    processes: Optional[int] = None,
    **axes: Sequence,
) -> List[SweepResult]:
    """Cross a configuration grid with fault plans and run every cell.

    Sweeps cache-scheme conclusions under adversarial network
    conditions: each plan in ``plans`` (``None`` = the unfaulted
    control) is applied to every configuration of
    ``sweep_grid(base, **axes)``.  Fault plans are frozen dataclasses,
    so faulted cells pickle into the process pool like any other;
    results come back in ``(plan-major, grid-minor)`` submission order
    with the plan recorded on each cell's ``cfg.fault_plan``.

    Example
    -------
    >>> from repro.config import SimulationConfig
    >>> from repro.faults.plan import FaultPlan
    >>> base = SimulationConfig(n_nodes=24, width=800, height=800,
    ...                         duration=120.0, warmup=20.0, n_items=100)
    >>> plans = [None, FaultPlan.parse(["drop:p=0.2"])]
    >>> cells = [replace(c, fault_plan=p) for p in plans
    ...          for c in sweep_grid(base, seed=[1, 2])]
    >>> len(cells)
    4
    """
    cells = [
        replace(cfg, fault_plan=plan)
        for plan in plans
        for cfg in sweep_grid(base, **axes)
    ]
    return run_sweep(cells, processes=processes)
