"""Job execution: entry resolution and the in-worker commit path.

Every runner — in-process, pool worker, or a future remote backend —
funnels through :func:`execute_job`: resolve the spec's entry point,
run it, and **commit the artifact from inside the worker** the moment
the report exists.  Committing in the worker (not the orchestrator)
means a campaign killed between a job finishing and the orchestrator
noticing still finds the completed artifact on resume.

Entry points are module-level functions named ``"module.path:function"``
with the signature ``fn(config, artifact_dir) -> RunReport``.  The
string form serializes (JSON for the remote stub, pickle-by-reference
for process pools under any start method); ``artifact_dir`` lets
entries park extra artifacts (trace exports, custom metrics) next to
the committed report.
"""

from __future__ import annotations

import importlib
import time
import traceback
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Optional, Union

from repro.analysis.metrics import RunReport
from repro.config import SimulationConfig
from repro.experiments.orchestrator.artifacts import commit_artifact, job_dir
from repro.experiments.orchestrator.spec import JobSpec

__all__ = ["JobResult", "execute_job", "resolve_entry", "run_simulation"]


def run_simulation(cfg: SimulationConfig, artifact_dir: Path) -> RunReport:
    """The default entry: one full PReCinCt simulation."""
    from repro.core.network import PReCinCtNetwork

    return PReCinCtNetwork(cfg).run()


def resolve_entry(entry: str) -> Callable[[SimulationConfig, Path], RunReport]:
    """Import ``"module.path:function"`` and return the callable."""
    module_name, _, func_name = entry.partition(":")
    if not module_name or not func_name:
        raise ValueError(f"entry must be 'module.path:function', got {entry!r}")
    module = importlib.import_module(module_name)
    try:
        fn = getattr(module, func_name)
    except AttributeError:
        raise ValueError(
            f"entry {entry!r}: module {module_name!r} has no attribute "
            f"{func_name!r}"
        ) from None
    if not callable(fn):
        raise ValueError(f"entry {entry!r} is not callable")
    return fn


@dataclass(frozen=True)
class JobResult:
    """Outcome of one job attempt."""

    job_id: str
    #: "done" | "failed" | "crashed" | "timeout" | "deferred" | "blocked"
    status: str
    report: Optional[RunReport] = None
    report_digest: Optional[str] = None
    error: Optional[str] = None
    wall_s: float = 0.0

    @property
    def ok(self) -> bool:
        return self.status == "done"


def execute_job(spec: JobSpec, root: Union[str, Path]) -> JobResult:
    """Run one job and commit its artifact; exceptions become results.

    An entry that raises yields ``status="failed"`` (the error string
    carries the traceback tail) and commits nothing, so resume retries
    it.  Only a successful run commits ``result.json``.
    """
    started = time.monotonic()
    directory = job_dir(root, spec.job_id)
    directory.mkdir(parents=True, exist_ok=True)
    try:
        fn = resolve_entry(spec.entry)
        report = fn(spec.config, directory)
        if not isinstance(report, RunReport):
            raise TypeError(
                f"entry {spec.entry!r} returned {type(report).__name__}, "
                f"expected RunReport"
            )
        wall_s = time.monotonic() - started
        digest = commit_artifact(root, spec, report, wall_s)
        return JobResult(
            spec.job_id, "done", report=report, report_digest=digest,
            wall_s=wall_s,
        )
    except Exception as exc:  # noqa: BLE001 — containment is the point
        tail = traceback.format_exc(limit=8)
        return JobResult(
            spec.job_id, "failed",
            error=f"{type(exc).__name__}: {exc}\n{tail}",
            wall_s=time.monotonic() - started,
        )


def _pool_job_main(spec: JobSpec, root: str, queue) -> None:
    """Child-process main for :class:`PoolRunner` (one job per child)."""
    result = execute_job(spec, root)
    # The report is already durably committed by execute_job; send the
    # parent a light summary so a torn pipe can't lose work.
    queue.put(
        {
            "job_id": result.job_id,
            "status": result.status,
            "report_digest": result.report_digest,
            "error": result.error,
            "wall_s": result.wall_s,
        }
    )
