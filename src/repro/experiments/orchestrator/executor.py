"""The campaign executor: journaled, resumable run-graph execution.

:func:`execute_graph` drives one pass of a campaign:

1. **Verify** — every job with a committed artifact is digest-verified
   (:func:`~repro.experiments.orchestrator.artifacts.verify_artifact`).
   Verified artifacts are *reused* (journalled as ``reuse``); stale or
   corrupted ones are journalled (``stale``) and re-queued.  Resume is
   therefore just "execute the same graph at the same root again".
2. **Schedule** — remaining jobs run in dependency waves through the
   chosen :class:`~repro.experiments.orchestrator.runtime.Runtime`;
   each transition lands in the journal (``start``/``done``/``fail``/
   ``defer``) the moment it happens, and completed artifacts are
   committed by the workers themselves, so a kill at any instant loses
   at most the jobs in flight.
3. **Report** — per-job progress rows and failure events go to an
   optional :class:`~repro.obs.stream.TelemetryBus` (the same bus the
   live ``--watch`` dashboard and ``repro watch`` consume), with
   ``t = resolved jobs`` against ``duration = total jobs`` so progress
   bars and ETA come for free.

``max_jobs`` bounds how many job *results* this pass consumes before
stopping early (journalled as an interrupted ``end``) — the
deterministic interrupt hook the crash-and-resume tests and the CI
kill-and-resume smoke are built on.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Union

from repro.analysis.metrics import RunReport
from repro.experiments.orchestrator.artifacts import verify_artifact
from repro.experiments.orchestrator.graph import RunGraph
from repro.experiments.orchestrator.journal import Journal
from repro.experiments.orchestrator.runtime import Runtime
from repro.experiments.orchestrator.worker import JobResult

__all__ = ["CampaignSummary", "execute_graph"]

PathLike = Union[str, Path]

#: Result statuses that resolve a job for dependency purposes.
_SUCCESS = ("done", "reused")
_FAILURE = ("failed", "crashed", "timeout", "blocked")


@dataclass
class CampaignSummary:
    """Outcome of one :func:`execute_graph` pass."""

    name: str
    #: job_id -> "done" | "reused" | "failed" | "crashed" | "timeout"
    #: | "blocked" | "deferred" | "pending"
    statuses: Dict[str, str] = field(default_factory=dict)
    #: Reports of every successful job (fresh or verified-reused).
    reports: Dict[str, RunReport] = field(default_factory=dict)
    #: Report digests of every successful job.
    report_digests: Dict[str, str] = field(default_factory=dict)
    #: Error strings of failed jobs.
    errors: Dict[str, str] = field(default_factory=dict)
    #: True when this pass stopped early (``max_jobs`` reached).
    interrupted: bool = False

    def count(self, *statuses: str) -> int:
        return sum(1 for s in self.statuses.values() if s in statuses)

    @property
    def n_done(self) -> int:
        return self.count("done")

    @property
    def n_reused(self) -> int:
        return self.count("reused")

    @property
    def n_failed(self) -> int:
        return self.count(*_FAILURE)

    @property
    def n_pending(self) -> int:
        return self.count("pending", "deferred")

    @property
    def ok(self) -> bool:
        """Every job succeeded (fresh or reused)."""
        return all(s in _SUCCESS for s in self.statuses.values())

    def describe(self) -> str:
        parts = [
            f"campaign {self.name!r}: {len(self.statuses)} job(s) — "
            f"{self.n_done} run, {self.n_reused} reused, "
            f"{self.n_failed} failed, {self.n_pending} pending"
        ]
        if self.interrupted:
            parts.append(" (interrupted)")
        return "".join(parts)


def execute_graph(
    graph: RunGraph,
    runner: Runtime,
    root: PathLike,
    *,
    name: str = "campaign",
    bus=None,
    max_jobs: Optional[int] = None,
    on_result: Optional[Callable[[JobResult], None]] = None,
) -> CampaignSummary:
    """Run (or resume) a campaign graph at ``root``; see module docs."""
    graph.validate()
    if max_jobs is not None and max_jobs < 0:
        raise ValueError(f"max_jobs must be >= 0, got {max_jobs}")
    root = Path(root)
    root.mkdir(parents=True, exist_ok=True)
    summary = CampaignSummary(name=name)
    started_wall = time.monotonic()

    with Journal(root / "journal.jsonl") as journal:
        journal.begin(name, len(graph))
        succeeded: set = set()

        # -- 1. verify committed artifacts; reuse what survives --------
        pending: List[str] = []
        for spec in graph:
            check = verify_artifact(root, spec)
            if check.ok:
                journal.reuse(spec.job_id, check.report_digest)
                summary.statuses[spec.job_id] = "reused"
                summary.reports[spec.job_id] = check.report
                summary.report_digests[spec.job_id] = check.report_digest
                succeeded.add(spec.job_id)
            else:
                if check.completed:
                    # A commit landed but no longer verifies: stale
                    # spec, tampered report, torn write.  Re-run it.
                    journal.stale(spec.job_id, f"{check.status}: {check.detail}")
                summary.statuses[spec.job_id] = "pending"
                pending.append(spec.job_id)

        def _publish(kind: Optional[str] = None, payload: Optional[dict] = None):
            if bus is None:
                return
            resolved = len(graph) - summary.count("pending")
            row = {
                "campaign.total": float(len(graph)),
                "campaign.done": float(summary.n_done),
                "campaign.reused": float(summary.n_reused),
                "campaign.failed": float(summary.n_failed),
                "campaign.deferred": float(summary.count("deferred")),
                "campaign.pending": float(summary.count("pending")),
                "campaign.wall_s": time.monotonic() - started_wall,
            }
            bus.publish(float(resolved), row)
            if kind is not None:
                bus.publish_event(float(resolved), kind, payload or {})

        _publish()

        # -- 2. dependency-wave scheduling ------------------------------
        consumed = 0
        interrupted = max_jobs is not None and consumed >= max_jobs
        while pending and not interrupted:
            ready = [
                jid for jid in pending
                if set(graph[jid].after) <= succeeded
            ]
            if not ready:
                # Nothing runnable: mark jobs whose dependencies failed
                # as blocked; anything else (e.g. waiting on a deferred
                # remote job) stays pending for a later resume.
                blocked_any = False
                for jid in pending:
                    blockers = [
                        dep for dep in graph[jid].after
                        if summary.statuses.get(dep) in _FAILURE
                    ]
                    if blockers:
                        journal.fail(
                            jid, "blocked",
                            f"dependency failed: {', '.join(blockers)}",
                        )
                        summary.statuses[jid] = "blocked"
                        summary.errors[jid] = f"blocked on {', '.join(blockers)}"
                        _publish("job-blocked", {"rule": f"{jid} blocked"})
                        blocked_any = True
                pending = [
                    jid for jid in pending
                    if summary.statuses[jid] == "pending"
                ]
                if not blocked_any:
                    break
                continue
            if max_jobs is not None:
                ready = ready[: max(max_jobs - consumed, 0)]
            specs = [graph[jid] for jid in ready]
            stream = runner.run(
                specs, root, on_start=lambda spec: journal.start(spec.job_id)
            )
            try:
                for result in stream:
                    _record(result, journal, summary, succeeded)
                    if result.status in _FAILURE:
                        _publish(
                            "job-" + result.status,
                            {"rule": f"{result.job_id} {result.status}",
                             "error": (result.error or "")[:200]},
                        )
                    else:
                        _publish()
                    if on_result is not None:
                        on_result(result)
                    consumed += 1
                    if max_jobs is not None and consumed >= max_jobs:
                        interrupted = True
                        break
            finally:
                stream.close()
            pending = [
                jid for jid in pending
                if summary.statuses.get(jid) == "pending"
            ]

        interrupted = interrupted and bool(pending)
        summary.interrupted = interrupted
        journal.end(
            done=summary.n_done,
            failed=summary.n_failed,
            reused=summary.n_reused,
            interrupted=interrupted,
        )
        _publish()
    return summary


def _record(
    result: JobResult,
    journal: Journal,
    summary: CampaignSummary,
    succeeded: set,
) -> None:
    """Fold one runner result into the journal and summary."""
    if result.status == "done":
        journal.done(result.job_id, result.report_digest, result.wall_s)
        summary.reports[result.job_id] = result.report
        summary.report_digests[result.job_id] = result.report_digest
        succeeded.add(result.job_id)
    elif result.status == "deferred":
        journal.defer(result.job_id, "queued for remote execution")
    else:
        journal.fail(result.job_id, result.status, result.error or "")
        summary.errors[result.job_id] = result.error or result.status
    summary.statuses[result.job_id] = result.status
