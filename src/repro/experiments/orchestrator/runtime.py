"""Pluggable runtimes: who actually executes the run-graph's jobs.

Every runner implements one interface (:class:`Runtime`): take a batch
of ready :class:`JobSpec` s and an artifact root, lazily yield
:class:`JobResult` s *as jobs complete* (not in submission order).  The
orchestrator journals transitions around that stream; the runners own
process management only.

* :class:`InProcessRunner` — sequential, same process.  Zero isolation,
  zero overhead; the debugger/profiler runtime and the default for
  single-process campaigns.
* :class:`PoolRunner` — one worker **process per job**, at most
  ``processes`` alive at once.  Per-job wall-clock timeouts and full
  crash containment: a job that raises, a worker that dies (OOM-kill,
  SIGKILL, segfault), or a job that overruns its timeout marks *that
  job* failed/crashed/timeout and the pool keeps serving the rest —
  there is no shared executor to break.  Each worker commits its own
  artifact before reporting back, so even the orchestrator dying right
  after a job finishes loses nothing.
* :class:`RemoteStubRunner` — serializes each job spec as a JSON file
  into a queue directory and yields ``deferred`` results.  The file
  format is the contract for future slurm/distributed backends: a
  remote agent that picks a spec up, runs
  :func:`repro.experiments.orchestrator.worker.execute_job`, and writes
  the artifact directory produces a campaign the local orchestrator
  resumes seamlessly (the artifacts digest-verify like any other).
"""

from __future__ import annotations

import multiprocessing
import time
from pathlib import Path
from typing import Callable, Iterator, Optional, Sequence, Union

from repro.experiments.orchestrator.artifacts import (
    atomic_write_json,
    load_artifact_report,
)
from repro.experiments.orchestrator.spec import JobSpec
from repro.experiments.orchestrator.worker import (
    JobResult,
    _pool_job_main,
    execute_job,
)

__all__ = [
    "InProcessRunner",
    "PoolRunner",
    "RemoteStubRunner",
    "Runtime",
]

PathLike = Union[str, Path]
OnStart = Optional[Callable[[JobSpec], None]]


class Runtime:
    """Interface every runner implements."""

    #: Human-readable runner name (journal/status output).
    name: str = "runtime"

    def run(
        self,
        jobs: Sequence[JobSpec],
        root: PathLike,
        on_start: OnStart = None,
    ) -> Iterator[JobResult]:
        """Lazily yield one :class:`JobResult` per job, as completed.

        ``on_start`` is invoked in the orchestrator process immediately
        before a job begins executing (the journal's ``start`` hook).
        Closing the iterator early must release any live workers.
        """
        raise NotImplementedError


class InProcessRunner(Runtime):
    """Sequential execution in the orchestrator process."""

    name = "inprocess"

    def run(
        self,
        jobs: Sequence[JobSpec],
        root: PathLike,
        on_start: OnStart = None,
    ) -> Iterator[JobResult]:
        for spec in jobs:
            if on_start is not None:
                on_start(spec)
            yield execute_job(spec, root)


class PoolRunner(Runtime):
    """One contained worker process per job, bounded concurrency."""

    name = "pool"

    def __init__(
        self,
        processes: Optional[int] = None,
        timeout: Optional[float] = None,
        start_method: Optional[str] = None,
        poll_interval: float = 0.02,
        term_grace: float = 5.0,
    ):
        if processes is not None and processes < 1:
            raise ValueError(f"processes must be >= 1, got {processes}")
        if timeout is not None and timeout <= 0:
            raise ValueError(f"timeout must be positive, got {timeout}")
        self.processes = processes or multiprocessing.cpu_count()
        #: Default per-job wall timeout; a spec's own ``timeout`` wins.
        self.timeout = timeout
        self._ctx = multiprocessing.get_context(start_method)
        self._poll = poll_interval
        self._term_grace = term_grace

    def _job_timeout(self, spec: JobSpec) -> Optional[float]:
        return spec.timeout if spec.timeout is not None else self.timeout

    def run(
        self,
        jobs: Sequence[JobSpec],
        root: PathLike,
        on_start: OnStart = None,
    ) -> Iterator[JobResult]:
        pending = list(jobs)
        pending.reverse()  # pop() from the front of submission order
        active = {}  # proc -> (spec, queue, started_monotonic)
        try:
            while pending or active:
                while pending and len(active) < self.processes:
                    spec = pending.pop()
                    queue = self._ctx.SimpleQueue()
                    proc = self._ctx.Process(
                        target=_pool_job_main,
                        args=(spec, str(root), queue),
                        name=f"repro-job-{spec.job_id}",
                    )
                    if on_start is not None:
                        on_start(spec)
                    proc.start()
                    active[proc] = (spec, queue, time.monotonic())
                result = self._poll_active(active, root)
                if result is not None:
                    yield result
                else:
                    time.sleep(self._poll)
        finally:
            for proc, (spec, queue, _) in active.items():
                self._reap(proc)
                queue.close()

    # -- internals --------------------------------------------------------

    def _poll_active(self, active, root: PathLike) -> Optional[JobResult]:
        """Harvest at most one finished/overrun worker from ``active``."""
        now = time.monotonic()
        for proc in list(active):
            spec, queue, started = active[proc]
            # A worker that reported is done regardless of liveness —
            # check the queue before the process to close the race
            # between its final write and its exit.
            if not queue.empty():
                payload = queue.get()
                proc.join()
                queue.close()
                del active[proc]
                return self._from_payload(spec, payload, root)
            if not proc.is_alive():
                proc.join()
                queue.close()
                del active[proc]
                return JobResult(
                    spec.job_id, "crashed",
                    error=(
                        f"worker died without reporting "
                        f"(exitcode {proc.exitcode})"
                    ),
                    wall_s=now - started,
                )
            limit = self._job_timeout(spec)
            if limit is not None and now - started > limit:
                self._reap(proc)
                queue.close()
                del active[proc]
                return JobResult(
                    spec.job_id, "timeout",
                    error=f"exceeded per-job timeout of {limit:g}s",
                    wall_s=now - started,
                )
        return None

    def _from_payload(self, spec: JobSpec, payload, root: PathLike) -> JobResult:
        if payload["status"] == "done":
            # The worker committed the artifact; read the report back
            # rather than piping it (keeps the IPC payload tiny and the
            # artifact the single source of truth).
            report = load_artifact_report(root, spec.job_id)
            return JobResult(
                spec.job_id, "done", report=report,
                report_digest=payload["report_digest"],
                wall_s=payload["wall_s"],
            )
        return JobResult(
            spec.job_id, payload["status"], error=payload.get("error"),
            wall_s=payload.get("wall_s", 0.0),
        )

    def _reap(self, proc) -> None:
        """Terminate (then kill) one worker process."""
        if proc.is_alive():
            proc.terminate()
            proc.join(self._term_grace)
            if proc.is_alive():  # pragma: no cover - stuck in a syscall
                proc.kill()
                proc.join()
        else:
            proc.join()


class RemoteStubRunner(Runtime):
    """Serialize job specs for a future slurm/distributed backend.

    Each job becomes ``<queue_dir>/<job_id>.json`` (atomic rename)
    holding the full spec, the campaign artifact root, and the digest a
    remote executor must reproduce.  Jobs are yielded as ``deferred`` —
    the campaign leaves them pending until a remote agent fills in the
    artifact directories and a resume pass verifies them.
    """

    name = "remote-stub"

    def __init__(self, queue_dir: PathLike):
        self.queue_dir = Path(queue_dir)

    def run(
        self,
        jobs: Sequence[JobSpec],
        root: PathLike,
        on_start: OnStart = None,
    ) -> Iterator[JobResult]:
        self.queue_dir.mkdir(parents=True, exist_ok=True)
        for spec in jobs:
            payload = {
                "schema": "repro.orchestrator.remote-job/v1",
                "job": spec.to_dict(),
                "artifact_root": str(Path(root).resolve()),
                "entry": spec.entry,
            }
            path = self.queue_dir / f"{spec.job_id}.json"
            atomic_write_json(path, payload)
            yield JobResult(
                spec.job_id, "deferred", error=None, wall_s=0.0,
            )
