"""Campaign orchestrator: a parallel, resumable run-graph runtime.

The paper's figures are sweeps — (scenario × seed × policy) grids of
independent simulations.  This package turns such a grid into a
:class:`RunGraph` of :class:`JobSpec` s executed by pluggable runners
behind one :class:`Runtime` interface, with:

* per-job artifact directories committed atomically the moment a job
  finishes (``jobs/<id>/{spec,report,result}.json``);
* a JSONL journal of every state transition, so a killed campaign
  resumes from where it stood;
* digest verification of completed artifacts on resume — stale or
  corrupted results are re-run, never silently trusted;
* live progress on the standard :class:`~repro.obs.stream.TelemetryBus`
  (``repro campaign run --watch`` / ``repro watch``).

See ``docs/EXPERIMENTS.md`` for the runtime interface, journal format,
artifact layout, and resume/verify semantics.
"""

from repro.experiments.orchestrator.artifacts import (
    ArtifactCheck,
    commit_artifact,
    job_dir,
    load_artifact_report,
    verify_artifact,
)
from repro.experiments.orchestrator.executor import (
    CampaignSummary,
    execute_graph,
)
from repro.experiments.orchestrator.graph import RunGraph
from repro.experiments.orchestrator.journal import (
    Journal,
    JournalState,
    replay_journal,
)
from repro.experiments.orchestrator.presets import (
    PRESETS,
    build_preset,
    definition_graph,
    definition_seeds,
    load_definition,
    save_definition,
)
from repro.experiments.orchestrator.runtime import (
    InProcessRunner,
    PoolRunner,
    RemoteStubRunner,
    Runtime,
)
from repro.experiments.orchestrator.spec import (
    DEFAULT_ENTRY,
    JobSpec,
    config_from_dict,
    config_to_dict,
    slugify,
    spec_digest,
)
from repro.experiments.orchestrator.worker import (
    JobResult,
    execute_job,
    resolve_entry,
    run_simulation,
)

__all__ = [
    "ArtifactCheck",
    "CampaignSummary",
    "DEFAULT_ENTRY",
    "InProcessRunner",
    "JobResult",
    "JobSpec",
    "Journal",
    "JournalState",
    "PRESETS",
    "PoolRunner",
    "RemoteStubRunner",
    "RunGraph",
    "Runtime",
    "build_preset",
    "commit_artifact",
    "config_from_dict",
    "config_to_dict",
    "definition_graph",
    "definition_seeds",
    "execute_graph",
    "execute_job",
    "job_dir",
    "load_artifact_report",
    "load_definition",
    "replay_journal",
    "save_definition",
    "resolve_entry",
    "run_simulation",
    "slugify",
    "spec_digest",
    "verify_artifact",
]
