"""Job specifications: the serializable unit of campaign work.

A :class:`JobSpec` names one simulation cell of a campaign run-graph —
a :class:`~repro.config.SimulationConfig`, an *entry point* (the
module-level function that executes the config), optional dependencies
on other jobs, and an optional per-job wall-clock timeout.  Specs are
frozen, picklable (so they cross process boundaries under any start
method), and JSON-serializable (so a :class:`RemoteStubRunner` can ship
them to a future slurm/distributed backend and so each job's artifact
directory records exactly what produced it).

Two digests anchor the resume machinery:

* :func:`spec_digest` fingerprints the result-*affecting* identity of a
  job (entry point + full config).  A completed artifact whose recorded
  spec digest no longer matches the graph's spec is **stale** — the
  campaign definition changed under it — and is re-run on resume rather
  than silently trusted.
* the report digest (:func:`repro.faults.audit.report_digest`) of the
  finished :class:`~repro.analysis.metrics.RunReport`, recorded next to
  the report so resume can detect a corrupted or hand-edited artifact.
"""

from __future__ import annotations

import hashlib
import json
import re
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.config import SimulationConfig
from repro.faults.plan import FaultPlan

__all__ = [
    "DEFAULT_ENTRY",
    "JobSpec",
    "config_from_dict",
    "config_to_dict",
    "slugify",
    "spec_digest",
]

#: The standard entry point: build, run, and report one PReCinCt
#: simulation (``repro.experiments.orchestrator.worker.run_simulation``).
DEFAULT_ENTRY = "repro.experiments.orchestrator.worker:run_simulation"

#: Characters allowed in a job id (it names a directory).
_ID_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._+-]*$")


def slugify(label: str) -> str:
    """Collapse an arbitrary cell label into a filesystem-safe job id."""
    slug = re.sub(r"[^A-Za-z0-9._+-]+", "-", label).strip("-.")
    return slug or "job"


def config_to_dict(cfg: SimulationConfig) -> Dict[str, Any]:
    """Plain-JSON form of a config (nested fault plan included)."""
    data = asdict(cfg)
    if cfg.fault_plan is not None:
        data["fault_plan"] = cfg.fault_plan.to_dict()
    data["anomaly_rules"] = list(cfg.anomaly_rules)
    return data


def config_from_dict(data: Mapping[str, Any]) -> SimulationConfig:
    """Inverse of :func:`config_to_dict` (validates via the dataclass)."""
    kwargs = dict(data)
    unknown = set(kwargs) - set(SimulationConfig.__dataclass_fields__)
    if unknown:
        raise ValueError(
            f"unknown SimulationConfig field(s): {', '.join(sorted(unknown))}"
        )
    if kwargs.get("fault_plan") is not None:
        kwargs["fault_plan"] = FaultPlan.from_dict(kwargs["fault_plan"])
    if "anomaly_rules" in kwargs:
        kwargs["anomaly_rules"] = tuple(kwargs["anomaly_rules"])
    return SimulationConfig(**kwargs)


@dataclass(frozen=True)
class JobSpec:
    """One node of a campaign run-graph."""

    #: Unique, filesystem-safe id (names the job's artifact directory).
    job_id: str
    #: The simulation this job runs.
    config: SimulationConfig
    #: ``"module.path:function"`` executed as ``fn(config, artifact_dir)
    #: -> RunReport``.  Must be module-level (picklable by reference).
    entry: str = DEFAULT_ENTRY
    #: Job ids that must complete successfully before this one starts.
    after: Tuple[str, ...] = field(default_factory=tuple)
    #: Wall-clock seconds a runner may let this job run (None = no cap;
    #: only runners with containment, e.g. PoolRunner, can enforce it).
    timeout: Optional[float] = None

    def __post_init__(self) -> None:
        if not _ID_RE.match(self.job_id):
            raise ValueError(
                f"invalid job id {self.job_id!r} (allowed: letters, digits, "
                f"'.', '_', '+', '-'; must not start with a separator)"
            )
        if ":" not in self.entry:
            raise ValueError(
                f"entry must be 'module.path:function', got {self.entry!r}"
            )
        object.__setattr__(self, "after", tuple(self.after))
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError(f"job timeout must be positive, got {self.timeout}")

    def to_dict(self) -> Dict[str, Any]:
        return {
            "job_id": self.job_id,
            "entry": self.entry,
            "after": list(self.after),
            "timeout": self.timeout,
            "config": config_to_dict(self.config),
            "spec_digest": spec_digest(self),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "JobSpec":
        return cls(
            job_id=data["job_id"],
            config=config_from_dict(data["config"]),
            entry=data.get("entry", DEFAULT_ENTRY),
            after=tuple(data.get("after", ())),
            timeout=data.get("timeout"),
        )


def _canonical(value: Any) -> Any:
    """NaN-safe canonical form (floats via repr, dicts sorted)."""
    if isinstance(value, float):
        return repr(value)
    if isinstance(value, (list, tuple)):
        return [_canonical(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _canonical(v) for k, v in sorted(value.items())}
    return value


def spec_digest(spec: JobSpec) -> str:
    """SHA-256 over the result-affecting identity of a job.

    Covers the entry point and the full config — not ``after`` or
    ``timeout``, which shape scheduling, never results.
    """
    payload = {
        "job_id": spec.job_id,
        "entry": spec.entry,
        "config": config_to_dict(spec.config),
    }
    blob = json.dumps(
        _canonical(payload), sort_keys=True, separators=(",", ":")
    ).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()
