"""Named campaign presets and the on-disk campaign definition.

``repro campaign run`` needs a graph; presets are the built-in ones:

* ``mini`` — a 2 policies × 2 cache sizes × seeds smoke grid of
  seconds-long simulations (the CI kill-and-resume campaign);
* ``cache-study`` — the Figs. 4-5 axes (replacement policy × cache
  fraction × seeds) at quick scale;
* ``consistency`` — the Figs. 6-8 axes (consistency scheme × update
  ratio × seeds) at quick scale.

The chosen preset and its parameters are written to
``<campaign-dir>/campaign.json`` on the first ``run``, so
``repro campaign resume/status/verify`` rebuild the same graph without
re-specifying flags — and because artifacts are digest-verified against
the *rebuilt* spec, editing a preset between runs invalidates exactly
the cells it changes.
"""

from __future__ import annotations

import json
import time
from dataclasses import replace
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from repro.config import SimulationConfig
from repro.experiments.orchestrator.artifacts import atomic_write_json
from repro.experiments.orchestrator.graph import RunGraph

__all__ = [
    "PRESETS",
    "build_preset",
    "definition_graph",
    "definition_seeds",
    "load_definition",
    "save_definition",
]

PathLike = Union[str, Path]

_DEFINITION_SCHEMA = "repro.orchestrator.campaign/v1"


def _mini(seeds: Sequence[int]) -> RunGraph:
    """2 × 2 × len(seeds) grid of seconds-long smoke simulations."""
    base = SimulationConfig(
        n_nodes=12,
        width=500.0,
        height=500.0,
        n_regions=4,
        duration=60.0,
        warmup=10.0,
        n_items=40,
        t_request=5.0,
        max_speed=4.0,
        consistency="none",
    )
    return RunGraph.grid(
        base,
        replacement_policy=["gd-ld", "gd-size"],
        cache_fraction=[0.02, 0.05],
        seed=list(seeds),
    )


def _cache_study(seeds: Sequence[int]) -> RunGraph:
    """Figs. 4-5 axes at quick scale: policy × cache fraction × seed."""
    base = SimulationConfig(
        n_nodes=80,
        max_speed=6.0,
        duration=500.0,
        warmup=100.0,
        n_items=1000,
        consistency="none",
    )
    return RunGraph.grid(
        base,
        replacement_policy=["gd-size", "gd-ld"],
        cache_fraction=[0.005, 0.015, 0.025],
        seed=list(seeds),
    )


def _consistency(seeds: Sequence[int]) -> RunGraph:
    """Figs. 6-8 axes at quick scale: scheme × update ratio × seed."""
    base = SimulationConfig(
        n_nodes=80,
        max_speed=6.0,
        duration=500.0,
        warmup=100.0,
        n_items=1000,
        t_request=30.0,
        cache_fraction=0.02,
    )
    graph = RunGraph()
    for scheme in ("plain-push", "pull-every-time", "push-adaptive-pull"):
        for ratio in (1.0, 3.0, 5.0):
            for seed in seeds:
                cfg = replace(
                    base, consistency=scheme, t_update=30.0 * ratio, seed=seed
                )
                graph.add(f"{scheme}_r{ratio:g}_s{seed}", cfg)
    return graph


PRESETS: Dict[str, object] = {
    "mini": _mini,
    "cache-study": _cache_study,
    "consistency": _consistency,
}


def build_preset(preset: str, seeds: Sequence[int]) -> RunGraph:
    """Instantiate one named preset over the given seeds."""
    try:
        builder = PRESETS[preset]
    except KeyError:
        raise ValueError(
            f"unknown preset {preset!r} (available: "
            f"{', '.join(sorted(PRESETS))})"
        ) from None
    if not seeds:
        raise ValueError("campaign needs at least one seed")
    return builder(list(seeds))


def save_definition(
    root: PathLike, *, name: str, preset: str, seeds: Sequence[int]
) -> Path:
    """Persist the campaign definition for flag-free resume."""
    path = Path(root) / "campaign.json"
    atomic_write_json(
        path,
        {
            "schema": _DEFINITION_SCHEMA,
            "name": name,
            "preset": preset,
            "seeds": list(seeds),
            "created_wall": time.time(),
        },
    )
    return path


def load_definition(root: PathLike) -> Optional[dict]:
    """Load ``campaign.json`` from a campaign dir (None when absent)."""
    path = Path(root) / "campaign.json"
    if not path.exists():
        return None
    data = json.loads(path.read_text(encoding="utf-8"))
    if data.get("schema") != _DEFINITION_SCHEMA:
        raise ValueError(
            f"{path}: unknown campaign schema {data.get('schema')!r}"
        )
    return data


def definition_graph(definition: dict) -> RunGraph:
    """Rebuild the run-graph a stored definition describes."""
    return build_preset(definition["preset"], definition["seeds"])


def definition_seeds(seeds: Optional[Sequence[int]]) -> List[int]:
    """Default seed list for new campaigns."""
    return list(seeds) if seeds else [1, 2]
