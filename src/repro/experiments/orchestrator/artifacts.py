"""Per-job artifact directories: the durable record of a finished job.

Layout under a campaign root::

    <root>/
      journal.jsonl               # state transitions (repro...journal)
      jobs/<job_id>/
        spec.json                 # the JobSpec that produced this dir
        report.json               # the RunReport (report_io list format)
        result.json               # commit record: digests + wall time
        ...                       # entry-specific extras (traces, ...)

The **commit point** is the atomic rename of ``result.json``: a job is
complete iff that file exists and is internally consistent.  Everything
is written tmp-file-then-``os.replace`` in the same directory, so a
kill at any instant leaves either the previous state or the new one —
never a half-written record.

:func:`verify_artifact` is the resume gate.  It recomputes the report
digest from ``report.json`` and compares both digests recorded in
``result.json`` against the artifact *and* against the current graph's
spec — a completed artifact is only trusted when the report hashes to
what the commit recorded **and** the spec that produced it is still the
spec the campaign wants.  Anything else ("stale-spec",
"corrupt-report", missing pieces) is re-run, not silently reused.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Optional, Union

from repro.analysis.metrics import RunReport
from repro.experiments.orchestrator.spec import JobSpec, spec_digest
from repro.experiments.report_io import reports_from_json, reports_to_json
from repro.faults.audit import report_digest

__all__ = [
    "ArtifactCheck",
    "atomic_write_json",
    "commit_artifact",
    "job_dir",
    "load_artifact_report",
    "verify_artifact",
]

PathLike = Union[str, Path]


def job_dir(root: PathLike, job_id: str) -> Path:
    """The artifact directory of one job (created on demand)."""
    return Path(root) / "jobs" / job_id


def atomic_write_json(path: PathLike, payload: Any) -> None:
    """Write JSON durably: tmp file in the same dir, fsync, rename."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(
        prefix=f".{path.name}.", suffix=".tmp", dir=path.parent
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def commit_artifact(
    root: PathLike, spec: JobSpec, report: RunReport, wall_s: float
) -> str:
    """Persist one finished job's artifact; returns the report digest.

    Writes ``spec.json`` and ``report.json`` first, then commits with
    the atomic rename of ``result.json`` — the moment that rename lands,
    the job is durably complete.
    """
    directory = job_dir(root, spec.job_id)
    directory.mkdir(parents=True, exist_ok=True)
    atomic_write_json(directory / "spec.json", spec.to_dict())
    # report_io's list format, via a tmp file for the same atomicity.
    tmp = directory / ".report.json.tmp"
    reports_to_json([report], tmp)
    os.replace(tmp, directory / "report.json")
    digest = report_digest(report)
    atomic_write_json(
        directory / "result.json",
        {
            "job_id": spec.job_id,
            "status": "done",
            "spec_digest": spec_digest(spec),
            "report_digest": digest,
            "wall_s": wall_s,
        },
    )
    return digest


@dataclass(frozen=True)
class ArtifactCheck:
    """Verdict of one :func:`verify_artifact` pass."""

    job_id: str
    #: "ok" | "missing" | "incomplete" | "stale-spec" | "corrupt-report"
    #: | "corrupt-result"
    status: str
    detail: str = ""
    report: Optional[RunReport] = None
    report_digest: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    @property
    def completed(self) -> bool:
        """Did a commit land, however (in)valid it now is?"""
        return self.status not in ("missing",)


def verify_artifact(root: PathLike, spec: JobSpec) -> ArtifactCheck:
    """Digest-verify one job's artifact against the current spec."""
    directory = job_dir(root, spec.job_id)
    result_path = directory / "result.json"
    if not result_path.exists():
        return ArtifactCheck(spec.job_id, "missing", "no result.json")
    try:
        result = json.loads(result_path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        return ArtifactCheck(
            spec.job_id, "corrupt-result", f"unreadable result.json: {exc}"
        )
    if result.get("status") != "done":
        return ArtifactCheck(
            spec.job_id, "incomplete",
            f"result status {result.get('status')!r}",
        )
    want_spec = spec_digest(spec)
    if result.get("spec_digest") != want_spec:
        return ArtifactCheck(
            spec.job_id, "stale-spec",
            "campaign spec changed since this artifact was produced",
        )
    report_path = directory / "report.json"
    if not report_path.exists():
        return ArtifactCheck(spec.job_id, "incomplete", "no report.json")
    try:
        reports = reports_from_json(report_path)
        if len(reports) != 1:
            raise ValueError(f"expected 1 report, found {len(reports)}")
        report = reports[0]
    except (OSError, ValueError, TypeError, KeyError) as exc:
        return ArtifactCheck(
            spec.job_id, "corrupt-report", f"unreadable report.json: {exc}"
        )
    recomputed = report_digest(report)
    if recomputed != result.get("report_digest"):
        return ArtifactCheck(
            spec.job_id, "corrupt-report",
            "report.json does not hash to the committed report_digest",
        )
    return ArtifactCheck(
        spec.job_id, "ok", report=report, report_digest=recomputed
    )


def load_artifact_report(root: PathLike, job_id: str) -> RunReport:
    """Load a completed job's report (no verification)."""
    [report] = reports_from_json(job_dir(root, job_id) / "report.json")
    return report
