"""The campaign run-graph: an ordered DAG of :class:`JobSpec` nodes.

A :class:`RunGraph` is what every runner executes: a collection of
uniquely-named jobs with optional ``after`` dependencies, validated at
build time (unknown dependencies and cycles are definition errors, not
runtime surprises).  :meth:`RunGraph.grid` builds the common case — the
paper's (scenario × seed × policy) sweeps — from a base config and axis
values, one job per Cartesian-product cell.
"""

from __future__ import annotations

import itertools
from dataclasses import replace
from typing import Dict, Iterator, List, Optional, Sequence

from repro.config import SimulationConfig
from repro.experiments.orchestrator.spec import (
    DEFAULT_ENTRY,
    JobSpec,
    slugify,
)

__all__ = ["RunGraph"]


class RunGraph:
    """An insertion-ordered set of jobs with acyclic dependencies."""

    def __init__(self, jobs: Sequence[JobSpec] = ()):
        self._jobs: Dict[str, JobSpec] = {}
        for job in jobs:
            self.add_spec(job)

    # -- building ---------------------------------------------------------

    def add(
        self,
        job_id: str,
        config: SimulationConfig,
        *,
        entry: str = DEFAULT_ENTRY,
        after: Sequence[str] = (),
        timeout: Optional[float] = None,
    ) -> JobSpec:
        """Create and register one job; returns the spec."""
        spec = JobSpec(
            job_id=job_id,
            config=config,
            entry=entry,
            after=tuple(after),
            timeout=timeout,
        )
        return self.add_spec(spec)

    def add_spec(self, spec: JobSpec) -> JobSpec:
        if spec.job_id in self._jobs:
            raise ValueError(f"duplicate job id {spec.job_id!r}")
        self._jobs[spec.job_id] = spec
        return spec

    @classmethod
    def grid(
        cls,
        base: SimulationConfig,
        *,
        entry: str = DEFAULT_ENTRY,
        timeout: Optional[float] = None,
        **axes: Sequence,
    ) -> "RunGraph":
        """One job per Cartesian-product cell of the named config axes.

        ``RunGraph.grid(base, replacement_policy=["gd-ld", "gd-size"],
        seed=[1, 2])`` yields four jobs named like ``gd-ld_s1`` —
        axis values joined in sorted-axis order, ``seed`` rendered as
        ``s<seed>``.
        """
        graph = cls()
        if not axes:
            graph.add("cell", base, entry=entry, timeout=timeout)
            return graph
        names = sorted(axes)
        for combo in itertools.product(*(axes[name] for name in names)):
            cfg = replace(base, **dict(zip(names, combo)))
            parts = [
                f"s{value}" if name == "seed" else slugify(str(value))
                for name, value in zip(names, combo)
            ]
            graph.add("_".join(parts), cfg, entry=entry, timeout=timeout)
        return graph

    # -- views ------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._jobs)

    def __iter__(self) -> Iterator[JobSpec]:
        return iter(self._jobs.values())

    def __contains__(self, job_id: str) -> bool:
        return job_id in self._jobs

    def __getitem__(self, job_id: str) -> JobSpec:
        return self._jobs[job_id]

    @property
    def job_ids(self) -> List[str]:
        return list(self._jobs)

    # -- validation / scheduling ------------------------------------------

    def validate(self) -> None:
        """Raise ``ValueError`` on unknown dependencies or cycles."""
        for spec in self:
            for dep in spec.after:
                if dep not in self._jobs:
                    raise ValueError(
                        f"job {spec.job_id!r} depends on unknown job {dep!r}"
                    )
        self.toposort()

    def toposort(self) -> List[List[str]]:
        """Dependency *waves*: every job in wave N depends only on jobs
        in waves < N.  Raises ``ValueError`` on a cycle."""
        remaining = {jid: set(spec.after) for jid, spec in self._jobs.items()}
        waves: List[List[str]] = []
        done: set = set()
        while remaining:
            ready = [jid for jid, deps in remaining.items() if deps <= done]
            if not ready:
                cyclic = ", ".join(sorted(remaining))
                raise ValueError(f"dependency cycle among jobs: {cyclic}")
            waves.append(ready)
            done.update(ready)
            for jid in ready:
                del remaining[jid]
        return waves

    def to_dict(self) -> Dict:
        return {"jobs": [spec.to_dict() for spec in self]}

    @classmethod
    def from_dict(cls, data: Dict) -> "RunGraph":
        return cls([JobSpec.from_dict(entry) for entry in data.get("jobs", ())])
