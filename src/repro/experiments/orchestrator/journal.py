"""The campaign journal: an append-only JSONL log of job transitions.

Every state change of a campaign — job started, finished, failed,
reused from a verified artifact, invalidated as stale, deferred to a
remote queue — is appended to ``journal.jsonl`` in the campaign
directory, flushed and fsynced per record so a SIGKILL loses at most
the line being written.  Resume replays the journal (tolerating a torn
final line) to learn where the campaign stood; the journal is also the
audit trail the resume property tests count events in ("no job executed
twice" is literally "one ``start`` record per job across all journal
segments").

Record grammar (one JSON object per line)::

    {"event": "begin", "campaign": ..., "jobs": N, "wall": ...}
    {"event": "start", "job": ID, "wall": ...}
    {"event": "done",  "job": ID, "report_digest": ..., "wall_s": ...}
    {"event": "fail",  "job": ID, "status": "failed|crashed|timeout|blocked",
                       "error": ...}
    {"event": "reuse", "job": ID, "report_digest": ...}
    {"event": "stale", "job": ID, "reason": "stale-spec|corrupt-report|..."}
    {"event": "defer", "job": ID, "path": ...}
    {"event": "end",   "done": D, "failed": F, "reused": R,
                       "interrupted": bool, "wall": ...}

Wall-clock timestamps are operational metadata only — nothing digestable
derives from them.
"""

from __future__ import annotations

import json
import os
import time
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

__all__ = ["Journal", "JournalState", "replay_journal"]

PathLike = Union[str, Path]

#: Events that set a job's current state (latest wins on replay).
_JOB_EVENTS = ("start", "done", "fail", "reuse", "stale", "defer")


class Journal:
    """Append-only writer over a campaign's ``journal.jsonl``."""

    def __init__(self, path: PathLike):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = open(self.path, "a", encoding="utf-8")
        self.records_written = 0

    def append(self, event: str, **fields: Any) -> None:
        """Write one record durably (flush + fsync)."""
        record = {"event": event, **fields}
        self._fh.write(json.dumps(record, sort_keys=True) + "\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())
        self.records_written += 1

    # -- convenience wrappers (the full grammar in one place) -------------

    def begin(self, campaign: str, jobs: int) -> None:
        self.append("begin", campaign=campaign, jobs=jobs, wall=time.time())

    def start(self, job_id: str) -> None:
        self.append("start", job=job_id, wall=time.time())

    def done(self, job_id: str, report_digest: str, wall_s: float) -> None:
        self.append("done", job=job_id, report_digest=report_digest,
                    wall_s=wall_s)

    def fail(self, job_id: str, status: str, error: str) -> None:
        self.append("fail", job=job_id, status=status, error=error)

    def reuse(self, job_id: str, report_digest: str) -> None:
        self.append("reuse", job=job_id, report_digest=report_digest)

    def stale(self, job_id: str, reason: str) -> None:
        self.append("stale", job=job_id, reason=reason)

    def defer(self, job_id: str, path: str) -> None:
        self.append("defer", job=job_id, path=path)

    def end(self, done: int, failed: int, reused: int,
            interrupted: bool) -> None:
        self.append("end", done=done, failed=failed, reused=reused,
                    interrupted=interrupted, wall=time.time())

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()

    def __enter__(self) -> "Journal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


@dataclass
class JournalState:
    """What a journal replay knows about a campaign."""

    #: Latest state-setting event per job (``start``/``done``/...).
    job_state: Dict[str, str] = field(default_factory=dict)
    #: Per-job count of each event kind (``counts[job]["start"]``).
    counts: Dict[str, Counter] = field(default_factory=dict)
    #: Report digest recorded by the latest ``done``/``reuse`` per job.
    report_digests: Dict[str, str] = field(default_factory=dict)
    #: Every parsed record, in order.
    records: List[Dict[str, Any]] = field(default_factory=list)
    #: Lines that failed to parse (a torn tail write is expected after
    #: a crash; more than one is suspicious).
    torn_lines: int = 0

    def event_count(self, event: str, job_id: Optional[str] = None) -> int:
        """Total occurrences of one event kind (optionally per job)."""
        if job_id is not None:
            return self.counts.get(job_id, Counter())[event]
        return sum(c[event] for c in self.counts.values())

    @property
    def started_jobs(self) -> List[str]:
        return sorted(j for j, c in self.counts.items() if c["start"])

    @property
    def ended(self) -> bool:
        return bool(self.records) and self.records[-1]["event"] == "end"


def replay_journal(path: PathLike) -> JournalState:
    """Rebuild campaign state from a journal file.

    Missing file → empty state (a fresh campaign).  A torn final line —
    the expected residue of a mid-write kill — is counted, not fatal.
    """
    state = JournalState()
    path = Path(path)
    if not path.exists():
        return state
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                state.torn_lines += 1
                continue
            if not isinstance(record, dict) or "event" not in record:
                state.torn_lines += 1
                continue
            state.records.append(record)
            event = record["event"]
            job_id = record.get("job")
            if job_id is not None:
                state.counts.setdefault(job_id, Counter())[event] += 1
                if event in _JOB_EVENTS:
                    state.job_state[job_id] = event
                if event in ("done", "reuse") and "report_digest" in record:
                    state.report_digests[job_id] = record["report_digest"]
    return state
