"""Full-text run summaries.

``describe_run`` turns a finished simulation into a single readable
report: headline metrics, latency percentiles, serve-class breakdown,
traffic by category, energy by category (+fairness), cache statistics,
and an optional topology snapshot.  Used by the CLI's ``--report`` and
handy at the end of notebooks and examples.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional

from repro.analysis.metrics import RunReport, jain_fairness

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.core.network import PReCinCtNetwork

__all__ = ["describe_run"]


def describe_run(
    net: "PReCinCtNetwork",
    report: Optional[RunReport] = None,
    topology: bool = False,
) -> str:
    """Render a multi-section text report for a finished run."""
    if report is None:
        report = net.report()
    lines: List[str] = []
    add = lines.append

    add(f"=== {report.config_label} ===")
    add(
        f"window {report.duration:.0f}s | requests {report.requests_served}"
        f"/{report.requests_issued} served ({100 * report.delivery_ratio:.1f} %),"
        f" {report.requests_failed} failed | updates {report.updates_issued}"
    )

    add("")
    add("latency")
    add(f"  mean {1000 * report.average_latency:9.1f} ms")
    add(f"  p50  {1000 * report.latency_p50:9.1f} ms")
    add(f"  p95  {1000 * report.latency_p95:9.1f} ms")
    add(f"  p99  {1000 * report.latency_p99:9.1f} ms")

    add("")
    add("serving")
    add(f"  byte hit ratio  {report.byte_hit_ratio:.4f}")
    add(f"  false hit ratio {report.false_hit_ratio:.6f}")
    total_served = max(report.requests_served, 1)
    for cls, count in sorted(
        report.served_by_class.items(), key=lambda kv: -kv[1]
    ):
        if count:
            add(f"  {cls:<13} {count:>6}  ({100 * count / total_served:5.1f} %)")

    add("")
    add("traffic (transmissions)")
    add(f"  total {report.total_messages:,.0f}")
    for key in sorted(report.extra):
        if key.startswith("sent."):
            add(f"  {key[5:]:<13} {report.extra[key]:>10,.0f}")

    add("")
    add("energy")
    add(f"  total            {report.energy_total_uj / 1e6:10.3f} J")
    add(f"  per request      {report.energy_per_request_mj:10.3f} mJ")
    by_cat = net.network.energy.total_by_category()
    for cat, uj in sorted(by_cat.items(), key=lambda kv: -kv[1]):
        if uj:
            add(f"  {cat:<16} {uj / 1e6:10.3f} J")
    idle = net.network.idle_energy_uj()
    if idle:
        add(f"  idle/listening   {idle / 1e6:10.3f} J")
    add(f"  fairness (Jain)  {jain_fairness(net.network.energy.per_node()):10.3f}")

    attributor = net.energy_attribution
    if attributor is not None and attributor.charges_seen:
        add("")
        add("energy attribution (span kind / request phase)")
        for kind, uj in attributor.by_span().items():
            add(f"  span  {kind:<18} {uj / 1e6:10.3f} J")
        for phase, uj in attributor.by_phase().items():
            add(f"  phase {phase:<18} {uj / 1e6:10.3f} J")

    add("")
    add("topology")
    from repro.analysis.connectivity import analyze_connectivity

    add(f"  {analyze_connectivity(net.network)}")

    add("")
    add("caches")
    used = sum(p.cache.used_bytes for p in net.peers)
    cap = sum(p.cache.capacity_bytes for p in net.peers)
    evictions = sum(p.cache.evictions for p in net.peers)
    insertions = sum(p.cache.insertions for p in net.peers)
    custody = sum(len(p.static_keys) for p in net.peers)
    add(f"  fill {used / max(cap, 1):6.1%}  insertions {insertions}  "
        f"evictions {evictions}")
    add(f"  custody copies {custody} (keys {len(net.db)})")

    if report.profile:
        add("")
        add("profile (wall-clock)")
        for name, rec in sorted(
            report.profile.items(), key=lambda kv: -kv[1]["self_s"]
        ):
            add(f"  {name:<22} calls {rec['calls']:>9,.0f}  "
                f"total {rec['total_s']:8.3f}s  self {rec['self_s']:8.3f}s")

    if net.log is not None:
        add("")
        add(f"event log: {len(net.log)} events kept, "
            f"{report.eventlog_dropped} dropped")
    if net.tracer is not None:
        sampled = (
            f", {net.tracer.sampled_out} sampled out "
            f"(rate {net.cfg.trace_sample_rate})"
            if net.tracer.sampled_out else ""
        )
        add(f"traces: {len(net.tracer)} completed, "
            f"{net.tracer.dropped_traces} dropped, "
            f"{net.tracer.open_traces} open{sampled}")
    if net.recorder is not None:
        add(f"flight recorder: {net.recorder.triggers} trigger(s), "
            f"{len(net.recorder.dumps_written)} bundle(s) in "
            f"{net.recorder.bundle_dir}")
    if net.anomaly is not None:
        add(f"anomaly triggers: {net.anomaly.triggers} firing(s) across "
            f"{len(net.anomaly.rules)} rule(s)")

    if topology:
        from repro.analysis.topology_map import render_topology

        add("")
        add(render_topology(net))
    return "\n".join(lines)
