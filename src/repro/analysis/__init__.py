"""Analysis: closed-form energy model and metric aggregation.

* :mod:`repro.analysis.theoretical` — the paper's eqs. (3)-(13): energy
  per request of the flooding scheme and of PReCinCt as a function of
  node count, density and region count, used by the Fig. 9 validation.
* :mod:`repro.analysis.metrics` — the per-run metric collector producing
  the paper's reported quantities: average latency per request, byte hit
  ratio, false hit ratio, control message overhead, energy per request.
"""

from repro.analysis.compare import compare_reports
from repro.analysis.connectivity import ConnectivityReport, analyze_connectivity
from repro.analysis.metrics import RequestMetrics, RunReport, jain_fairness
from repro.analysis.plotting import ascii_chart, ascii_log_chart
from repro.analysis.summary import describe_run
from repro.analysis.theoretical import TheoreticalModel
from repro.analysis.topology_map import render_topology

__all__ = [
    "ConnectivityReport",
    "RequestMetrics",
    "RunReport",
    "TheoreticalModel",
    "analyze_connectivity",
    "ascii_chart",
    "ascii_log_chart",
    "compare_reports",
    "describe_run",
    "jain_fairness",
    "render_topology",
]
