"""Reconcile simulated per-request energy against eqs. 11/12-13.

The paper's quantitative claim is closed-form: flooding costs eq. 11
per request, PReCinCt costs eqs. 12-13.  The simulator books the same
Feeney per-message costs (eqs. 3-10) message by message, so the two
must agree — within the slack the analysis itself leaves open (the
``I`` hop-count estimate, the ζ density cap, boundary effects) — when
the simulation is run under the analysis's own assumptions:

* **no caching** — every request escalates to the home region, the
  eq. 12-13 request path (``I`` hops in, one region flood, ``I`` hops
  back);
* **no consistency traffic** — eqs. 11-13 model request energy only.

:func:`reconcile_energy` runs a scenario under exactly those settings
with span-level energy attribution on, divides the attributed
request + response energy by the number of requests issued, and
compares against :meth:`TheoreticalModel.precinct_energy` with a
tolerance verdict.  ``repro energy`` is the CLI face.

The default tolerance is deliberately loose (|ratio − 1| ≤ 0.5): the
closed form is a mean-field estimate — it assumes uniform node
density, straight-line ``I``-hop routes, and exactly one region flood
per request — while the simulation has mobility, perimeter detours,
duplicate-suppressed floods, and failed requests.  The verdict guards
against order-of-magnitude drift (a broken energy model or a
double-charged path), not against the closed form's own approximation
error.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict

from repro.analysis.theoretical import TheoreticalModel
from repro.core.messages import CONTROL_BYTES

__all__ = ["EnergyReconciliation", "reconcile_energy"]


@dataclass
class EnergyReconciliation:
    """Simulated vs. analytical per-request energy, with a verdict."""

    scenario: str
    seed: int
    n_nodes: int
    n_regions: int
    requests_issued: int
    #: Attributed request + response energy per issued request (uJ).
    simulated_uj: float
    #: eq. 13 per-request prediction (uJ).
    precinct_uj: float
    #: eq. 11 per-request flooding prediction (uJ) — context: what the
    #: same workload would cost without region hashing.
    flooding_uj: float
    tolerance: float
    #: Attributed energy per span kind and per request phase (uJ) —
    #: the span-level view behind the headline number.
    by_span: Dict[str, float] = field(default_factory=dict)
    by_phase: Dict[str, float] = field(default_factory=dict)

    @property
    def ratio(self) -> float:
        """simulated / analytical (eq. 13); 1.0 = perfect agreement."""
        return self.simulated_uj / self.precinct_uj if self.precinct_uj else 0.0

    @property
    def passed(self) -> bool:
        return abs(self.ratio - 1.0) <= self.tolerance

    def to_dict(self) -> Dict[str, Any]:
        return {
            "scenario": self.scenario,
            "seed": self.seed,
            "n_nodes": self.n_nodes,
            "n_regions": self.n_regions,
            "requests_issued": self.requests_issued,
            "simulated_uj_per_request": self.simulated_uj,
            "precinct_uj_per_request": self.precinct_uj,
            "flooding_uj_per_request": self.flooding_uj,
            "ratio": self.ratio,
            "tolerance": self.tolerance,
            "verdict": "PASS" if self.passed else "FAIL",
            "by_span_uj": dict(self.by_span),
            "by_phase_uj": dict(self.by_phase),
        }

    def render(self) -> str:
        lines = [
            f"energy reconciliation: scenario {self.scenario!r} seed "
            f"{self.seed} ({self.n_nodes} nodes, {self.n_regions} regions, "
            f"{self.requests_issued} requests)",
            f"  simulated   {self.simulated_uj / 1000.0:10.2f} mJ/request "
            f"(attributed request + response energy)",
            f"  eq. 12-13   {self.precinct_uj / 1000.0:10.2f} mJ/request "
            f"(PReCinCt closed form)",
            f"  eq. 11      {self.flooding_uj / 1000.0:10.2f} mJ/request "
            f"(flooding closed form, context)",
            f"  ratio       {self.ratio:10.3f}  "
            f"(tolerance |ratio-1| <= {self.tolerance:g})",
        ]
        if self.by_span:
            lines.append("  per span kind:")
            for kind, uj in self.by_span.items():
                lines.append(f"    {kind:<20} {uj / 1000.0:12.2f} mJ")
        if self.by_phase:
            lines.append("  per request phase:")
            for phase, uj in self.by_phase.items():
                lines.append(f"    {phase:<20} {uj / 1000.0:12.2f} mJ")
        lines.append(
            f"  verdict     {'PASS' if self.passed else 'FAIL'}"
        )
        return "\n".join(lines)


def reconcile_energy(
    scenario: str = "baseline",
    seed: int = 42,
    tolerance: float = 0.5,
) -> EnergyReconciliation:
    """Run ``scenario`` under the analysis's assumptions and compare.

    The scenario config is re-run with caching and consistency traffic
    disabled (the eq. 12-13 setting) and span-level energy attribution
    enabled; the simulated per-request energy is the attributed
    ``request`` + ``response`` component energy divided by requests
    issued after warm-up.
    """
    from repro.core.network import PReCinCtNetwork
    from repro.faults.audit import SCENARIOS, canonical_scenario_name
    from repro.obs.observers import Observers

    try:
        factory = SCENARIOS[scenario]
    except KeyError:
        raise ValueError(
            f"unknown scenario {scenario!r} "
            f"(expected one of {sorted(SCENARIOS)})"
        ) from None
    cfg = replace(
        factory(seed),
        enable_cache=False,
        consistency="none",
        t_update=None,
    )
    # Tracing rides along so the charges land on request phases too
    # (the per-phase joules the report carries next to the verdict).
    observers = Observers(energy_attribution=True, tracing=True)
    net = PReCinCtNetwork(cfg, observers=observers)
    net.run()

    attributor = observers.energy
    by_component = attributor.by_component_modeled()
    requests = net.metrics.requests_issued
    simulated_total = by_component.get("request", 0.0) + by_component.get(
        "response", 0.0
    )
    simulated = simulated_total / requests if requests else 0.0

    # Eq. 13 is parametric in message sizes; feed it the *realized*
    # ones: on-air sizes include the radio header, and the mean served
    # item size is popularity-weighted (Zipf), not the uniform mean.
    from repro.net.packet import HEADER_BYTES

    metrics = net.metrics
    if metrics.requests_served:
        mean_item = metrics.bytes_served / metrics.requests_served
    else:
        mean_item = (cfg.min_item_bytes + cfg.max_item_bytes) / 2.0
    model = TheoreticalModel(
        area_side=cfg.width,
        range_m=cfg.range_m,
        request_bytes=CONTROL_BYTES + HEADER_BYTES,
        response_bytes=CONTROL_BYTES + mean_item + HEADER_BYTES,
        params=net.network.energy.params,
    )
    return EnergyReconciliation(
        scenario=canonical_scenario_name(scenario),
        seed=seed,
        n_nodes=cfg.n_nodes,
        n_regions=cfg.n_regions,
        requests_issued=requests,
        simulated_uj=simulated,
        precinct_uj=model.precinct_energy(cfg.n_nodes, cfg.n_regions),
        flooding_uj=model.flooding_energy(cfg.n_nodes),
        tolerance=tolerance,
        by_span=attributor.by_span(),
        by_phase=attributor.by_phase(),
    )
