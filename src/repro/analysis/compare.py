"""Side-by-side comparison of run reports.

``compare_reports`` renders a metric-by-metric table of several runs —
the shape one reaches for when answering "which scheme should I use?" —
with relative deltas against a chosen baseline.
"""

from __future__ import annotations

import math
from typing import Callable, Optional, Sequence, Tuple

from repro.analysis.metrics import RunReport

__all__ = ["compare_reports"]

#: (display name, extractor, better) — better is +1 for higher-is-better,
#: -1 for lower-is-better, 0 for neutral.
_METRICS: Sequence[Tuple[str, Callable[[RunReport], float], int]] = (
    ("latency (s)", lambda r: r.average_latency, -1),
    ("latency p95 (s)", lambda r: r.latency_p95, -1),
    ("byte hit ratio", lambda r: r.byte_hit_ratio, +1),
    ("false hit ratio", lambda r: r.false_hit_ratio, -1),
    ("delivery ratio", lambda r: r.delivery_ratio, +1),
    ("energy/req (mJ)", lambda r: r.energy_per_request_mj, -1),
    ("consistency msgs", lambda r: r.consistency_messages, -1),
    ("total msgs", lambda r: r.total_messages, -1),
)


def _fmt(v: float) -> str:
    if isinstance(v, float) and math.isnan(v):
        return "n/a"
    if abs(v) >= 1000:
        return f"{v:,.0f}"
    return f"{v:.4g}"


def compare_reports(
    reports: Sequence[RunReport],
    labels: Optional[Sequence[str]] = None,
    baseline: int = 0,
) -> str:
    """Render a comparison table; deltas are relative to ``baseline``.

    A ``+12.3%`` delta means the value is 12.3 % higher than the
    baseline's; the direction marker (``▲ better`` / ``▼ worse``) uses
    each metric's polarity.
    """
    if not reports:
        raise ValueError("need at least one report")
    if labels is None:
        labels = [r.config_label for r in reports]
    if len(labels) != len(reports):
        raise ValueError("labels must match reports")
    if not 0 <= baseline < len(reports):
        raise ValueError(f"baseline index {baseline} out of range")

    col_width = max(14, max(len(l) for l in labels) + 2)
    lines = []
    header = f"{'metric':<20}" + "".join(f"{l:>{col_width}}" for l in labels)
    lines.append(header)
    lines.append("-" * len(header))
    base = reports[baseline]
    for name, extract, better in _METRICS:
        cells = []
        base_value = extract(base)
        for i, report in enumerate(reports):
            value = extract(report)
            cell = _fmt(value)
            if i != baseline and base_value and not math.isnan(base_value) and not math.isnan(value):
                delta = (value - base_value) / abs(base_value)
                if abs(delta) >= 0.005 and better != 0:
                    good = (delta > 0) == (better > 0)
                    mark = "+" if delta > 0 else "-"
                    cell += f" ({mark}{abs(delta):.0%}{'↑' if good else '↓'})"
            cells.append(cell)
        lines.append(
            f"{name:<20}" + "".join(f"{c:>{col_width}}" for c in cells)
        )
    lines.append(
        f"(deltas vs {labels[baseline]!r}; ↑ = better on that metric)"
    )
    return "\n".join(lines)
