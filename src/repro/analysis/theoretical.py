"""Closed-form energy analysis (paper §5, eqs. 3-13).

Implements the paper's analytical model for the energy consumed per
request under

* the **flooding** retrieval scheme (eq. 11): every node in the network
  processes the broadcast once, then the response returns over a chain
  of point-to-point hops, and
* the **PReCinCt** scheme (eqs. 12-13): the request travels ``I``
  point-to-point hops to the home region, is flooded only among the
  ``n = N / R`` nodes of that region, and the response returns over
  ``I`` point-to-point hops.

The hop-count estimate ``I`` (number of *intermediate* nodes between
requester and responder) defaults to the mean distance between two
uniform random points in the square divided by the radio range — the
standard geometric estimate; both schemes share it, so the comparison
shape is insensitive to its exact constant.

Used by the Fig. 9 validation benches, which overlay these curves on the
simulated measurements.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.energy import EnergyParams

__all__ = ["TheoreticalModel"]

#: E[distance] between two uniform points in a unit square (the exact
#: constant is (2 + sqrt(2) + 5*asinh(1)) / 15).
_MEAN_UNIT_SQUARE_DISTANCE = (2.0 + math.sqrt(2.0) + 5.0 * math.asinh(1.0)) / 15.0


@dataclass(frozen=True)
class TheoreticalModel:
    """The paper's energy model for one request.

    Parameters
    ----------
    area_side:
        Side of the (square) service area in metres (Fig. 9: 600 m).
    range_m:
        Radio transmission range ``r`` (250 m).
    request_bytes / response_bytes:
        On-air sizes of the request and of the data response.
    params:
        Linear energy coefficients (Feeney defaults).
    """

    area_side: float = 600.0
    range_m: float = 250.0
    request_bytes: float = 64.0
    response_bytes: float = 64.0 + 5632.0  # header + mean item (1-10 KiB uniform)
    params: EnergyParams = EnergyParams()
    #: Expected fraction of the radio range a greedy-forwarding hop
    #: advances towards the destination.  The paper leaves ``I``
    #: unspecified; unit-range hops (factor 1.0) underestimate path
    #: lengths at moderate density, where greedy progress per hop is
    #: well known to average roughly 60-70 % of the range.
    hop_progress: float = 0.65

    # -- building blocks ----------------------------------------------------

    @property
    def area(self) -> float:
        """Service area A (eq. 6 context)."""
        return self.area_side * self.area_side

    def node_density(self, n_nodes: int) -> float:
        """delta = N / A (eq. 6)."""
        return n_nodes / self.area

    def nodes_in_radio_range(self, n_nodes: int) -> float:
        """zeta = delta * pi * r^2 (eq. 7), capped at N - 1.

        The cap models what the paper calls *edge effects*: a disk of
        radius r cannot contain more receivers than exist.
        """
        zeta = self.node_density(n_nodes) * math.pi * self.range_m**2
        return min(zeta, max(n_nodes - 1, 0))

    def broadcast_total(self, n_nodes: int, size: float) -> float:
        """E_total_bd = E_bd_sd + zeta * E_bd_rv (eq. 8)."""
        zeta = self.nodes_in_radio_range(n_nodes)
        return self.params.bcast_send(size) + zeta * self.params.bcast_recv(size)

    def p2p_hop(self, size: float) -> float:
        """Energy of one point-to-point hop: send + receive (eqs. 9-10)."""
        return self.params.p2p_send(size) + self.params.p2p_recv(size)

    def intermediate_nodes(self) -> float:
        """I — expected intermediate nodes on a requester-responder path.

        E[path length] divided by the expected per-hop progress gives
        the expected hop count; intermediates are one fewer than hops
        (floored at zero for single-hop paths).
        """
        mean_distance = _MEAN_UNIT_SQUARE_DISTANCE * self.area_side
        hops = mean_distance / (self.range_m * self.hop_progress)
        return max(hops - 1.0, 0.0)

    # -- per-request energies (eqs. 11, 13) -----------------------------------

    def flooding_energy(self, n_nodes: int) -> float:
        """E_Flooding = N * E_total_bd + I * (E_p2p_sd + E_p2p_rv) (eq. 11), uJ."""
        i = self.intermediate_nodes()
        return n_nodes * self.broadcast_total(
            n_nodes, self.request_bytes
        ) + i * self.p2p_hop(self.response_bytes)

    def precinct_energy(self, n_nodes: int, n_regions: int) -> float:
        """E_PReCinCt (eq. 13), uJ.

        ``I`` p2p hops carry the request to the home region, ``n = N/R``
        nodes flood it inside the region, and ``I`` p2p hops carry the
        response back.
        """
        if n_regions <= 0:
            raise ValueError(f"n_regions must be positive, got {n_regions}")
        i = self.intermediate_nodes()
        n_per_region = n_nodes / n_regions
        request_leg = i * self.p2p_hop(self.request_bytes)
        # Flooding within one region: n nodes each broadcast once; zeta
        # for the in-region flood is bounded by the region population.
        zeta_region = min(
            self.node_density(n_nodes) * math.pi * self.range_m**2,
            max(n_per_region - 1.0, 0.0),
        )
        region_broadcast = self.params.bcast_send(
            self.request_bytes
        ) + zeta_region * self.params.bcast_recv(self.request_bytes)
        flood_leg = n_per_region * region_broadcast
        response_leg = i * self.p2p_hop(self.response_bytes)
        return request_leg + flood_leg + response_leg

    # -- convenience ------------------------------------------------------------

    def flooding_energy_mj(self, n_nodes: int) -> float:
        """Eq. 11 in millijoules (the unit of Fig. 9's y-axis)."""
        return self.flooding_energy(n_nodes) / 1000.0

    def precinct_energy_mj(self, n_nodes: int, n_regions: int) -> float:
        """Eq. 13 in millijoules."""
        return self.precinct_energy(n_nodes, n_regions) / 1000.0
