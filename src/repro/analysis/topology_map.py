"""ASCII snapshots of the network topology.

Renders node positions, region boundaries, and optional per-node
annotations as a terminal map — the quickest way to see why a group
of peers is partitioned or which regions are starving.

::

    +------------+------------+
    |  .    o    |     o      |
    |     o  o   |  X         |
    +------------+------------+
    |            |   o o  o   |
    | o          |       o    |
    +------------+------------+

``o`` live node · ``X`` dead node · region borders from the grid table.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.core.network import PReCinCtNetwork

__all__ = ["render_topology"]


def render_topology(
    net: "PReCinCtNetwork",
    width: int = 72,
    height: int = 24,
    marks: Optional[Dict[int, str]] = None,
) -> str:
    """Render the current node placement and region grid.

    Parameters
    ----------
    marks:
        Optional per-node override characters (e.g. ``{5: "R"}`` to
        highlight a requester).  Defaults: live ``o``, dead ``X``.
    """
    marks = marks or {}
    plane_w = net.cfg.width
    plane_h = net.cfg.height
    grid = [[" "] * width for _ in range(height)]

    def to_cell(x: float, y: float):
        col = min(width - 1, max(0, int(x / plane_w * (width - 1))))
        row = min(height - 1, max(0, int(y / plane_h * (height - 1))))
        return height - 1 - row, col  # north up

    # Region borders: draw each region's bounding edges.
    for region in net.table:
        xs = [v[0] for v in region.vertices]
        ys = [v[1] for v in region.vertices]
        x0, x1, y0, y1 = min(xs), max(xs), min(ys), max(ys)
        r0, c0 = to_cell(x0, y0)
        r1, c1 = to_cell(x1, y1)
        top, bottom = min(r0, r1), max(r0, r1)
        left, right = min(c0, c1), max(c0, c1)
        for c in range(left, right + 1):
            for r in (top, bottom):
                grid[r][c] = "-" if grid[r][c] == " " else grid[r][c]
        for r in range(top, bottom + 1):
            for c in (left, right):
                grid[r][c] = "|" if grid[r][c] in (" ",) else grid[r][c]
        for r in (top, bottom):
            for c in (left, right):
                grid[r][c] = "+"

    positions = net.network.positions()
    for node_id in range(net.cfg.n_nodes):
        r, c = to_cell(float(positions[node_id, 0]), float(positions[node_id, 1]))
        if node_id in marks:
            grid[r][c] = marks[node_id][0]
        elif not net.network.is_alive(node_id):
            grid[r][c] = "X"
        else:
            grid[r][c] = "o"

    lines = ["".join(row) for row in grid]
    alive = int(net.network.alive.sum())
    lines.append(
        f"t={net.sim.now:.1f}s  {alive}/{net.cfg.n_nodes} alive  "
        f"{len(net.table)} regions  ({plane_w:.0f}x{plane_h:.0f} m)"
    )
    return "\n".join(lines)
