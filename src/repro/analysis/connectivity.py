"""Connectivity analysis of the radio topology.

Many MP2P pathologies (failed requests, unreachable home regions,
group-mobility islands) are just partitions in disguise.  These helpers
compute the unit-disk graph's connected components from the network's
current positions — the first thing to check when delivery drops.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.net.network import WirelessNetwork

__all__ = ["ConnectivityReport", "analyze_connectivity", "components"]


def components(positions: np.ndarray, radius: float, alive=None) -> np.ndarray:
    """Connected-component labels of the unit-disk graph.

    Dead nodes get label -1.  BFS over the adjacency derived from
    pairwise distances — O(N^2) memory, fine for simulation-scale N.
    """
    positions = np.asarray(positions, dtype=float)
    n = positions.shape[0]
    if alive is None:
        alive = np.ones(n, dtype=bool)
    d = np.hypot(
        positions[:, 0][:, None] - positions[:, 0][None, :],
        positions[:, 1][:, None] - positions[:, 1][None, :],
    )
    adjacency = (d <= radius) & ~np.eye(n, dtype=bool)
    adjacency &= alive[:, None] & alive[None, :]
    labels = np.full(n, -1, dtype=int)
    current = 0
    for start in range(n):
        if labels[start] != -1 or not alive[start]:
            continue
        stack = [start]
        labels[start] = current
        while stack:
            u = stack.pop()
            for v in np.flatnonzero(adjacency[u]):
                if labels[v] == -1:
                    labels[v] = current
                    stack.append(int(v))
        current += 1
    return labels


@dataclass(frozen=True)
class ConnectivityReport:
    """Snapshot of the topology's connectedness."""

    n_alive: int
    n_components: int
    largest_fraction: float
    mean_degree: float

    @property
    def is_connected(self) -> bool:
        return self.n_components <= 1

    def __str__(self) -> str:
        return (
            f"{self.n_alive} alive, {self.n_components} component(s), "
            f"largest {100 * self.largest_fraction:.0f} %, "
            f"mean degree {self.mean_degree:.1f}"
        )


def analyze_connectivity(network: "WirelessNetwork") -> ConnectivityReport:
    """Connectivity of the network's *current* sampled topology."""
    positions = network.positions()
    alive = network.alive
    labels = components(positions, network.radio.range_m, alive)
    n_alive = int(alive.sum())
    live_labels = labels[labels >= 0]
    if live_labels.size == 0:
        return ConnectivityReport(0, 0, 0.0, 0.0)
    counts = np.bincount(live_labels)
    degrees = [
        network.neighbors_of(int(i)).size for i in np.flatnonzero(alive)
    ]
    return ConnectivityReport(
        n_alive=n_alive,
        n_components=int(counts.size),
        largest_fraction=float(counts.max() / n_alive),
        mean_degree=float(np.mean(degrees)) if degrees else 0.0,
    )
