"""Terminal (ASCII) plotting for benchmark output.

The benchmark harness regenerates the paper's figures as data series;
these helpers render them as compact terminal plots so a bench run's
output can be eyeballed against the paper without any plotting stack.
Pure text, no dependencies.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple

__all__ = ["ascii_chart", "ascii_log_chart"]

_MARKS = "ox+*#@%&"


def _fmt(v: float) -> str:
    if v == 0:
        return "0"
    magnitude = abs(v)
    if magnitude >= 1000 or magnitude < 0.01:
        return f"{v:.2e}"
    return f"{v:.3g}"


def ascii_chart(
    series: Dict[str, Sequence[Tuple[float, float]]],
    width: int = 60,
    height: int = 16,
    title: str = "",
    x_label: str = "x",
    y_label: str = "y",
    log_y: bool = False,
) -> str:
    """Render one or more (x, y) series as an ASCII scatter chart.

    Parameters
    ----------
    series:
        Mapping of series name to a sequence of (x, y) points.  Each
        series gets its own marker character; a legend is appended.
    log_y:
        Plot log10(y) on the vertical axis (Fig. 6 is log scale).
    """
    points = [
        (x, y) for pts in series.values() for x, y in pts if not math.isnan(y)
    ]
    if not points:
        return f"{title}\n(no data)"
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    if log_y:
        if min(ys) <= 0:
            raise ValueError("log_y requires strictly positive y values")
        ys = [math.log10(y) for y in ys]
    x_min, x_max = min(xs), max(xs)
    y_min, y_max = min(ys), max(ys)
    x_span = (x_max - x_min) or 1.0
    y_span = (y_max - y_min) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for idx, (name, pts) in enumerate(series.items()):
        mark = _MARKS[idx % len(_MARKS)]
        for x, y in pts:
            if math.isnan(y):
                continue
            yy = math.log10(y) if log_y else y
            col = int(round((x - x_min) / x_span * (width - 1)))
            row = int(round((yy - y_min) / y_span * (height - 1)))
            grid[height - 1 - row][col] = mark

    top = 10 ** y_max if log_y else y_max
    bottom = 10 ** y_min if log_y else y_min
    lines: List[str] = []
    if title:
        lines.append(title)
    axis_note = " (log)" if log_y else ""
    lines.append(f"{y_label}{axis_note}  top={_fmt(top)}")
    for row in grid:
        lines.append("|" + "".join(row))
    lines.append("+" + "-" * width)
    lines.append(
        f" {x_label}: {_fmt(x_min)} .. {_fmt(x_max)}   bottom={_fmt(bottom)}"
    )
    legend = "   ".join(
        f"{_MARKS[i % len(_MARKS)]}={name}" for i, name in enumerate(series)
    )
    lines.append(" " + legend)
    return "\n".join(lines)


def ascii_log_chart(
    series: Dict[str, Sequence[Tuple[float, float]]],
    width: int = 60,
    height: int = 16,
    title: str = "",
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Convenience wrapper: :func:`ascii_chart` with a log-10 y axis."""
    return ascii_chart(
        series,
        width=width,
        height=height,
        title=title,
        x_label=x_label,
        y_label=y_label,
        log_y=True,
    )
