"""Per-run metric collection and reporting.

Collects exactly the quantities the paper's evaluation reports:

* **average latency per request** (Figs. 4, 8) — issue-to-serve time,
  averaged over all served requests (locally served requests contribute
  their near-zero serve time);
* **byte hit ratio** (Fig. 5) — fraction of served bytes satisfied
  *within the requester's region* (own static store, own cache, or a
  regional member's cache) — the paper's "local hit";
* **false hit ratio** (Fig. 7) — stale serves / serves shown as valid;
* **control message overhead** (Fig. 6) — transmissions in the
  ``consistency`` packet category (pushes, invalidation-flood hops,
  polls, replies);
* **energy per request** (Fig. 9) — total Feeney-model energy divided
  by served requests.

Serve classes
-------------
``local-static``  own static store;  ``local-cache``  own dynamic cache
(possibly after a validation poll); ``regional``  another peer in the
same region; ``home``  the key's home region; ``replica``  the replica
region; ``intercept``  an en-route cache on the GPSR path;
``degraded``  the replica, reached by a circuit-breaker steer around a
suspected home region (:mod:`repro.resilience`) — counted lazily so
runs that never degrade report the classic class set unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.sim import StatRegistry, WelfordAccumulator
from repro.sim.quantiles import QuantileSet

__all__ = ["RequestMetrics", "RunReport", "jain_fairness"]


def jain_fairness(values) -> float:
    """Jain's fairness index of a nonnegative allocation.

    ``(sum x)^2 / (n * sum x^2)`` — 1.0 when perfectly equal, ``1/n``
    when one node carries everything.  Used to judge how evenly a
    retrieval scheme spreads energy drain across peers: in MP2P systems
    an unfair scheme kills its custodian batteries first.
    """
    xs = [float(v) for v in values]
    if not xs:
        return float("nan")
    total = sum(xs)
    if total == 0:
        return 1.0  # nobody spent anything: trivially fair
    square_sum = sum(x * x for x in xs)
    return total * total / (len(xs) * square_sum)

#: Serve classes counted as a *byte hit* (satisfied within the region).
LOCAL_CLASSES = frozenset({"local-static", "local-cache", "regional"})

SERVE_CLASSES = (
    "local-static",
    "local-cache",
    "regional",
    "home",
    "replica",
    "intercept",
)

#: Serve classes that only exist behind feature gates.  They are NOT
#: prepopulated in ``served_by_class`` — a prepopulated zero would leak
#: into every report digest — and only appear once actually served.
EXTRA_SERVE_CLASSES = frozenset({"degraded"})


class RequestMetrics:
    """Accumulates request outcomes for one simulation run."""

    def __init__(self) -> None:
        self.requests_issued = 0
        self.updates_issued = 0
        self.requests_failed = 0
        self.served_by_class: Dict[str, int] = {cls: 0 for cls in SERVE_CLASSES}
        self.latency = WelfordAccumulator()
        #: Streaming latency percentiles (P² estimators; O(1) memory).
        self.latency_quantiles = QuantileSet((0.5, 0.95, 0.99))
        self.bytes_served = 0.0
        self.bytes_served_local = 0.0
        #: Serves that went through an explicit validation poll.
        self.validated_serves = 0
        #: Serves shown as valid without validation (FHR denominator).
        self.unvalidated_serves = 0
        #: Unvalidated serves whose data was stale (FHR numerator).
        self.stale_serves = 0

    # -- recording -----------------------------------------------------------

    def on_request_issued(self) -> None:
        self.requests_issued += 1

    def on_update_issued(self) -> None:
        self.updates_issued += 1

    def on_request_failed(self) -> None:
        self.requests_failed += 1

    def on_served(
        self,
        serve_class: str,
        latency: float,
        size_bytes: float,
        stale: bool,
        validated: bool,
    ) -> None:
        if (
            serve_class not in self.served_by_class
            and serve_class not in EXTRA_SERVE_CLASSES
        ):
            raise ValueError(f"unknown serve class {serve_class!r}")
        self.served_by_class[serve_class] = (
            self.served_by_class.get(serve_class, 0) + 1
        )
        self.latency.add(latency)
        self.latency_quantiles.add(latency)
        self.bytes_served += size_bytes
        if serve_class in LOCAL_CLASSES:
            self.bytes_served_local += size_bytes
        if validated:
            self.validated_serves += 1
        else:
            self.unvalidated_serves += 1
            if stale:
                self.stale_serves += 1

    # -- derived metrics --------------------------------------------------------

    @property
    def requests_served(self) -> int:
        return sum(self.served_by_class.values())

    @property
    def average_latency(self) -> float:
        return self.latency.mean

    @property
    def byte_hit_ratio(self) -> float:
        if self.bytes_served == 0:
            return float("nan")
        return self.bytes_served_local / self.bytes_served

    @property
    def false_hit_ratio(self) -> float:
        """Stale hits over hits shown as valid (paper §6.2.2)."""
        shown_valid = self.unvalidated_serves + self.validated_serves
        if shown_valid == 0:
            return float("nan")
        return self.stale_serves / shown_valid

    def reset(self) -> None:
        """Zero everything (used at the end of the warm-up phase)."""
        self.__init__()


@dataclass
class RunReport:
    """Immutable summary of one finished simulation run."""

    config_label: str
    duration: float
    requests_issued: int
    requests_served: int
    requests_failed: int
    updates_issued: int
    average_latency: float
    byte_hit_ratio: float
    false_hit_ratio: float
    consistency_messages: float
    total_messages: float
    energy_total_uj: float
    latency_p50: float = float("nan")
    latency_p95: float = float("nan")
    latency_p99: float = float("nan")
    served_by_class: Dict[str, int] = field(default_factory=dict)
    extra: Dict[str, float] = field(default_factory=dict)
    #: Events silently discarded by the bounded event-log ring (0 when
    #: logging is off or nothing was truncated).  Excluded from the
    #: report digest (``repro.faults.audit.report_summary`` enumerates
    #: hashed fields explicitly).
    eventlog_dropped: int = 0
    #: Wall-clock self-time per profiled section
    #: (``{section: {calls, total_s, self_s}}``).  Machine-dependent by
    #: nature, hence also excluded from the report digest.
    profile: Dict[str, Dict[str, float]] = field(default_factory=dict)

    @property
    def energy_per_request_mj(self) -> float:
        """Energy per served request in millijoules (Fig. 9 units)."""
        if self.requests_served == 0:
            return float("nan")
        return self.energy_total_uj / self.requests_served / 1000.0

    @property
    def delivery_ratio(self) -> float:
        if self.requests_issued == 0:
            return float("nan")
        return self.requests_served / self.requests_issued

    @staticmethod
    def from_run(
        label: str,
        duration: float,
        metrics: RequestMetrics,
        stats: StatRegistry,
        energy_total_uj: float,
        eventlog_dropped: int = 0,
        profile: Dict[str, Dict[str, float]] = None,
    ) -> "RunReport":
        total_msgs = stats.value("net.broadcast_sent") + stats.value("net.unicast_sent")
        # Per-category transmission counts (request/response/consistency/
        # handoff/management/...), exposed via `extra["sent.<category>"]`.
        prefix = "count.net.sent."
        extra = {
            f"sent.{name[len(prefix):]}": value
            for name, value in stats.snapshot().items()
            if name.startswith(prefix)
        }
        return RunReport(
            extra=extra,
            config_label=label,
            duration=duration,
            requests_issued=metrics.requests_issued,
            requests_served=metrics.requests_served,
            requests_failed=metrics.requests_failed,
            updates_issued=metrics.updates_issued,
            average_latency=metrics.average_latency,
            byte_hit_ratio=metrics.byte_hit_ratio,
            false_hit_ratio=metrics.false_hit_ratio,
            consistency_messages=stats.value("net.sent.consistency"),
            total_messages=total_msgs,
            energy_total_uj=energy_total_uj,
            latency_p50=metrics.latency_quantiles.value(0.5),
            latency_p95=metrics.latency_quantiles.value(0.95),
            latency_p99=metrics.latency_quantiles.value(0.99),
            served_by_class=dict(metrics.served_by_class),
            eventlog_dropped=eventlog_dropped,
            profile=profile if profile is not None else {},
        )

    def row(self) -> str:
        """One human-readable results row (used by the bench harness)."""
        return (
            f"{self.config_label:<32} "
            f"lat={self.average_latency:7.4f}s  "
            f"bhr={self.byte_hit_ratio:6.4f}  "
            f"fhr={self.false_hit_ratio:8.6f}  "
            f"cons_msgs={self.consistency_messages:9.0f}  "
            f"E/req={self.energy_per_request_mj:8.3f}mJ  "
            f"served={self.requests_served}/{self.requests_issued}"
        )
