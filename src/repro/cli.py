"""Command-line interface.

Run single simulations or regenerate the paper's figures without writing
any Python::

    python -m repro run --nodes 80 --speed 6 --cache 0.02 --policy gd-ld
    python -m repro fig 4          # regenerate one figure's data series
    python -m repro fig all        # regenerate everything
    python -m repro theory --nodes 20 40 60 80
    python -m repro faults --fault 'drop:p=0.1,start=100,end=400'
    python -m repro run --resilience --retries 2 --deadline 5
    python -m repro audit --seed 42 --scenario default
    python -m repro trace --slowest 5 --export-chrome trace.json
    python -m repro trace diff baseline.jsonl faulted.jsonl
    python -m repro profile --duration 400 --json profile.json
    python -m repro energy --scenario baseline --tolerance 0.5
    python -m repro run --anomaly 'mac.backlog_max_s>5' --bundle-dir bundles/
    python -m repro run --watch --live-export live.jsonl
    python -m repro watch live.jsonl --follow
    python -m repro serve --shards 4 --port 7117 --metrics-snapshot metrics.prom
    python -m repro loadgen --port 7117 --clients 8 --duration 10

The CLI is a thin veneer over :mod:`repro.experiments`; anything it can
do is equally available through the library API.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.analysis.theoretical import TheoreticalModel
from repro.config import SimulationConfig
from repro.core.messages import CONTROL_BYTES
from repro.core.network import PReCinCtNetwork
from repro.experiments.figures import (
    format_cache_sweep,
    format_consistency_sweep,
    format_energy_points,
    run_fig4_fig5,
    run_fig6_fig7_fig8,
    run_fig9a,
    run_fig9b,
)

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="PReCinCt (IPDPS 2005) reproduction — simulations and figures",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser("run", help="run one PReCinCt simulation")
    run_p.add_argument("--nodes", type=int, default=80)
    run_p.add_argument("--regions", type=int, default=9)
    run_p.add_argument("--speed", type=float, default=6.0,
                       help="max node speed m/s (0 = static)")
    run_p.add_argument("--cache", type=float, default=0.02,
                       help="cache fraction of database size")
    run_p.add_argument("--policy", choices=["gd-ld", "gd-size", "lru", "lfu"],
                       default="gd-ld")
    run_p.add_argument(
        "--mobility",
        choices=["random-waypoint", "manhattan", "group"],
        default="random-waypoint",
    )
    run_p.add_argument("--digest", action="store_true",
                       help="enable Summary-Cache regional digests")
    run_p.add_argument("--prefetch", action="store_true",
                       help="enable popularity prefetching")
    run_p.add_argument("--dynamic-regions", action="store_true",
                       help="enable adaptive region Merge/Separate")
    run_p.add_argument("--churn-uptime", type=float, default=None,
                       help="mean connected seconds per peer (enables churn)")
    run_p.add_argument("--map", action="store_true",
                       help="print an ASCII topology snapshot after the run")
    run_p.add_argument("--trace-sample-rate", type=float, default=None,
                       metavar="RATE",
                       help="enable request tracing with head-based "
                            "sampling at RATE in [0, 1] (digest-neutral; "
                            "bounds tracer memory on huge runs)")
    run_p.add_argument("--export-trace", default=None, metavar="PATH",
                       help="write the (sampled) traces as JSON lines "
                            "(implies tracing)")
    run_p.add_argument(
        "--anomaly", action="append", default=[], metavar="RULE",
        type=_anomaly_rule,
        help="anomaly trigger on a telemetry series, e.g. "
             "'mac.backlog_max_s>0.5' or 'cache.hit_ratio<0.1'; fires a "
             "flight-recorder bundle when breached (implies telemetry); "
             "repeatable",
    )
    run_p.add_argument(
        "--bundle-dir", default=None, metavar="DIR",
        help="arm the flight recorder: crashes and anomaly triggers "
             "leave forensic bundles in DIR",
    )
    run_p.add_argument(
        "--watch", action="store_true",
        help="live terminal dashboard on stderr while the run executes "
             "(in-place ANSI repaint on a TTY, one-line summaries "
             "otherwise; implies telemetry)",
    )
    run_p.add_argument(
        "--watch-interval", type=float, default=None, metavar="S",
        help="minimum wall seconds between dashboard repaints "
             "(default 1.0)",
    )
    run_p.add_argument(
        "--live-export", default=None, metavar="PATH",
        help="stream each telemetry sample to PATH as JSONL, flushed "
             "per record so 'tail -f' and 'repro watch --follow' can "
             "track the run live (implies telemetry)",
    )
    run_p.add_argument(
        "--metrics-snapshot", default=None, metavar="PATH",
        help="keep PATH updated with a Prometheus-style text snapshot "
             "of the latest telemetry row (implies telemetry)",
    )
    run_p.add_argument(
        "--no-color", action="store_true",
        help="force the dashboard's plain one-line-summary mode "
             "(no ANSI; the CI-safe mode)",
    )
    _add_resilience_args(run_p)
    run_p.add_argument("--report", action="store_true",
                       help="print the full multi-section run summary")
    run_p.add_argument(
        "--consistency",
        choices=["none", "plain-push", "pull-every-time", "push-adaptive-pull"],
        default="none",
    )
    run_p.add_argument("--t-update", type=float, default=None,
                       help="mean inter-update time (s); omit for read-only")
    run_p.add_argument("--duration", type=float, default=1000.0)
    run_p.add_argument("--warmup", type=float, default=200.0)
    run_p.add_argument("--items", type=int, default=1000)
    run_p.add_argument("--seed", type=int, default=1)
    _add_kernel_args(run_p)

    fig_p = sub.add_parser("fig", help="regenerate a paper figure's data")
    fig_p.add_argument("figure", choices=["4", "5", "6", "7", "8", "9a", "9b", "all"])
    fig_p.add_argument("--quick", action="store_true",
                       help="smaller/faster sweep (noisier curves)")
    fig_p.add_argument("--processes", type=int, default=1, metavar="N",
                       help="fan seed replications of figs 4-8 out over "
                            "N worker processes (default 1 = serial)")

    th_p = sub.add_parser("theory", help="closed-form energy model (eqs. 11, 13)")
    th_p.add_argument("--nodes", type=int, nargs="+", default=[20, 40, 60, 80])
    th_p.add_argument("--regions", type=int, default=9)
    th_p.add_argument("--area", type=float, default=600.0)

    flt_p = sub.add_parser(
        "faults", help="run one simulation under a declarative fault plan"
    )
    flt_p.add_argument("--nodes", type=int, default=40)
    flt_p.add_argument("--regions", type=int, default=9)
    flt_p.add_argument("--speed", type=float, default=6.0,
                       help="max node speed m/s (0 = static)")
    flt_p.add_argument("--cache", type=float, default=0.02)
    flt_p.add_argument(
        "--consistency",
        choices=["none", "plain-push", "pull-every-time", "push-adaptive-pull"],
        default="push-adaptive-pull",
    )
    flt_p.add_argument("--t-update", type=float, default=60.0,
                       help="mean inter-update time (s); 0 disables updates")
    flt_p.add_argument("--duration", type=float, default=600.0)
    flt_p.add_argument("--warmup", type=float, default=100.0)
    flt_p.add_argument("--items", type=int, default=500)
    flt_p.add_argument("--seed", type=int, default=1)
    flt_p.add_argument(
        "--fault", action="append", default=[], metavar="SPEC",
        help="fault rule, e.g. 'drop:p=0.1,start=100,end=400', "
             "'crash:at=200,nodes=3+7', 'partition:start=100,end=200,regions=0'; "
             "repeatable",
    )
    flt_p.add_argument("--plan-file", default=None,
                       help="JSON fault-plan file (merged after --fault rules)")
    flt_p.add_argument("--check-invariants", action="store_true",
                       help="re-check system invariants at every fault boundary")
    _add_resilience_args(flt_p)

    aud_p = sub.add_parser(
        "audit",
        help="determinism audit: run a scenario repeatedly, compare digests",
    )
    from repro.faults.audit import SCENARIOS

    aud_p.add_argument("--scenario", default="default",
                       choices=sorted(SCENARIOS))
    aud_p.add_argument("--seed", type=int, default=42)
    aud_p.add_argument("--runs", type=int, default=2)
    aud_p.add_argument("--golden", default=None, metavar="PATH",
                       help="golden-digest JSON file to verify against")
    aud_p.add_argument(
        "--refresh-golden", action="store_true",
        help="re-run every canonical scenario and rewrite --golden PATH",
    )
    aud_p.add_argument(
        "--bundle-dir", default=None, metavar="DIR",
        help="arm the flight recorder: in-run incidents and digest "
             "divergences leave forensic bundles in DIR",
    )
    aud_p.add_argument(
        "--export-trace", default=None, metavar="PATH",
        help="also trace the final audit run (digest-neutral) and write "
             "its traces as JSON lines — a baseline for later diffs",
    )
    aud_p.add_argument(
        "--baseline-trace", default=None, metavar="PATH",
        help="trace JSONL export to diff the audited run against: phase "
             "regressions are flagged alongside digest divergence",
    )

    tr_p = sub.add_parser(
        "trace",
        help="run one traced simulation and summarize the request "
             "traces, or diff two trace exports (trace diff A B)",
    )
    tr_sub = tr_p.add_subparsers(dest="trace_cmd", metavar="{diff}")
    diff_p = tr_sub.add_parser(
        "diff",
        help="align two Tracer.to_jsonl exports and rank per-phase "
             "latency regressions",
    )
    diff_p.add_argument("trace_a", metavar="A.jsonl",
                        help="baseline trace export")
    diff_p.add_argument("trace_b", metavar="B.jsonl",
                        help="candidate trace export")
    diff_p.add_argument("--json", default=None, metavar="PATH",
                        help="also write the diff report as JSON")
    diff_p.add_argument("--top", type=int, default=0, metavar="N",
                        help="list only the N worst phases (0 = all)")
    _add_workload_args(tr_p)
    tr_p.add_argument("--slowest", type=int, default=5, metavar="N",
                      help="show the N slowest requests with per-phase "
                           "latency breakdowns")
    tr_p.add_argument("--outcome", default=None, metavar="CLASS",
                      help="only summarize traces with this outcome "
                           "(e.g. 'failed', 'home', 'local-cache')")
    tr_p.add_argument("--export-jsonl", default=None, metavar="PATH",
                      help="write every completed trace as JSON lines")
    tr_p.add_argument("--export-chrome", default=None, metavar="PATH",
                      help="write a Chrome trace-event file "
                           "(chrome://tracing, Perfetto)")

    pr_p = sub.add_parser(
        "profile",
        help="run one simulation with wall-clock profiling and report "
             "per-section self-times",
    )
    _add_workload_args(pr_p)
    pr_p.add_argument("--json", default=None, metavar="PATH",
                      help="also write the per-section profile as JSON "
                           "(the perf-gate baseline format)")

    en_p = sub.add_parser(
        "energy",
        help="reconcile simulated per-request energy against the "
             "paper's closed forms (eqs. 11, 12-13)",
    )
    en_p.add_argument("--scenario", default="baseline",
                      choices=sorted(SCENARIOS))
    en_p.add_argument("--seed", type=int, default=42)
    en_p.add_argument("--tolerance", type=float, default=0.5,
                      help="pass while |simulated/eq.13 - 1| <= TOLERANCE "
                           "(default 0.5; the closed form is mean-field)")
    en_p.add_argument("--json", default=None, metavar="PATH",
                      help="also write the reconciliation report as JSON")

    bench_p = sub.add_parser(
        "bench",
        help="event-kernel microbenchmarks on pinned scenarios "
             "(fast vs reference kernel; see docs/PERFORMANCE.md)",
    )
    bench_p.add_argument(
        "--scenario", action="append", default=None, metavar="NAME",
        help="pinned scenario to run (repeatable; default: all)",
    )
    bench_p.add_argument(
        "--quick", action="store_true",
        help="shrink virtual duration for CI smoke runs "
             "(results are NOT trajectory-comparable)",
    )
    bench_p.add_argument("--repeats", type=int, default=3,
                         help="runs per kernel; best run is reported "
                              "(default 3)")
    bench_p.add_argument(
        "--no-reference", dest="reference", action="store_false",
        default=True,
        help="skip the scalar reference kernel (no speedup column)",
    )
    bench_p.add_argument("--bench-id", default=None, metavar="ID",
                         help="identifier recorded in the payload "
                              "(e.g. BENCH_0006)")
    bench_p.add_argument("--json", default=None, metavar="PATH",
                         help="write the payload as JSON (the "
                              "benchmarks/perf/BENCH_*.json format)")

    watch_p = sub.add_parser(
        "watch",
        help="render a run's --live-export JSONL as a dashboard: "
             "follow a live run (--follow) or replay a finished one",
    )
    watch_p.add_argument("path", metavar="PATH",
                         help="telemetry JSONL export to read "
                              "(a --live-export file)")
    watch_p.add_argument("--follow", "-f", action="store_true",
                         help="keep polling for new records (tail -f) "
                              "until the run's end marker or Ctrl-C")
    watch_p.add_argument("--interval", type=float, default=1.0, metavar="S",
                         help="minimum wall seconds between repaints "
                              "(default 1.0)")
    watch_p.add_argument("--timeout", type=float, default=None, metavar="S",
                         help="with --follow: give up after S wall "
                              "seconds without a new record")
    watch_p.add_argument("--no-color", action="store_true",
                         help="plain one-line-summary mode (no ANSI)")

    srv_p = sub.add_parser(
        "serve",
        help="run the asyncio edge-cache service: the simulation's "
             "cache core (GD-LD, TTR consistency, breakers) behind a "
             "JSON-lines TCP API over geohash-routed region shards",
    )
    srv_p.add_argument("--host", default="127.0.0.1")
    srv_p.add_argument("--port", type=int, default=7117,
                       help="TCP port (0 = pick a free port)")
    srv_p.add_argument("--shards", type=int, default=4,
                       help="number of region shards (default 4)")
    srv_p.add_argument("--items", type=int, default=500,
                       help="origin database size (default 500)")
    srv_p.add_argument("--cache", type=float, default=0.05,
                       help="per-shard cache capacity as a fraction of "
                            "total database bytes (default 0.05)")
    srv_p.add_argument(
        "--consistency",
        choices=["plain-push", "pull-every-time", "push-adaptive-pull"],
        default="push-adaptive-pull",
    )
    srv_p.add_argument("--origin-latency", type=float, default=0.0,
                       metavar="S",
                       help="simulated origin round-trip seconds "
                            "(default 0)")
    srv_p.add_argument("--deadline", type=float, default=1.0, metavar="S",
                       help="per-request latency budget in seconds; "
                            "0 disables deadlines (default 1.0)")
    srv_p.add_argument("--origin-retries", type=int, default=0, metavar="N",
                       help="origin retry budget per request; only "
                            "answered failures consume it (default 0)")
    srv_p.add_argument("--hedge-after", type=float, default=None,
                       metavar="S",
                       help="launch a hedged duplicate of an origin call "
                            "slow for S seconds (default: no hedging)")
    srv_p.add_argument("--max-inflight", type=int, default=64, metavar="N",
                       help="per-shard bound on admitted-but-unfinished "
                            "ops before shedding; 0 = unbounded "
                            "(default 64)")
    srv_p.add_argument("--no-supervise", action="store_true",
                       help="disable shard supervision (crash/wedge "
                            "detection, backoff restarts, warm rebuild)")
    srv_p.add_argument("--heartbeat-timeout", type=float, default=1.0,
                       metavar="S",
                       help="seconds a shard may sit on queued work "
                            "without progress before it is declared "
                            "wedged (default 1.0)")
    srv_p.add_argument("--hot-key-policy", choices=["off", "shed", "coalesce"],
                       default="off",
                       help="hot-key protection: shed or coalesce keys "
                            "over the rate threshold (default off)")
    srv_p.add_argument("--hot-key-threshold", type=int, default=50,
                       metavar="N",
                       help="requests per window that make a key hot "
                            "(default 50)")
    srv_p.add_argument("--service-fault", action="append", default=[],
                       metavar="SPEC", dest="service_faults",
                       help="scripted chaos event, e.g. "
                            "'shard-kill:at=2,shard=1' or "
                            "'origin-error-rate:at=1,p=0.5,duration=3'; "
                            "repeatable")
    srv_p.add_argument("--duration", type=float, default=None, metavar="S",
                       help="auto-shutdown after S wall seconds "
                            "(default: run until SIGTERM)")
    srv_p.add_argument("--seed", type=int, default=1)
    srv_p.add_argument("--telemetry-interval", type=float, default=1.0,
                       metavar="S",
                       help="seconds between telemetry samples "
                            "(default 1.0)")
    srv_p.add_argument("--live-export", default=None, metavar="PATH",
                       help="stream telemetry samples to PATH as JSONL "
                            "('repro watch PATH --follow' tails it)")
    srv_p.add_argument("--metrics-snapshot", default=None, metavar="PATH",
                       help="keep PATH updated with a Prometheus-style "
                            "snapshot of the latest telemetry row")
    srv_p.add_argument("--watch", action="store_true",
                       help="live terminal dashboard on stderr")
    srv_p.add_argument("--no-color", action="store_true",
                       help="plain one-line dashboard output (no ANSI)")

    lg_p = sub.add_parser(
        "loadgen",
        help="Zipf load generator against a running 'repro serve' "
             "instance: closed-loop by default, open-loop with --rate",
    )
    lg_p.add_argument("--host", default="127.0.0.1")
    lg_p.add_argument("--port", type=int, default=7117)
    lg_p.add_argument("--clients", type=int, default=4,
                      help="concurrent clients (default 4)")
    lg_p.add_argument("--rate", type=float, default=None, metavar="R",
                      help="open-loop offered load in requests/second "
                           "across all clients (default: closed loop)")
    lg_p.add_argument("--duration", type=float, default=5.0, metavar="S",
                      help="wall seconds to run (default 5)")
    lg_p.add_argument("--theta", type=float, default=0.8,
                      help="Zipf skew of key popularity (default 0.8)")
    lg_p.add_argument("--items", type=int, default=500,
                      help="keyspace size; must not exceed the server's "
                           "--items (default 500)")
    lg_p.add_argument("--put-ratio", type=float, default=0.0,
                      help="fraction of operations that are puts "
                           "(default 0 = read-only)")
    lg_p.add_argument("--timeout", type=float, default=5.0, metavar="S",
                      help="client-side per-request timeout (default 5)")
    lg_p.add_argument("--seed", type=int, default=1)
    lg_p.add_argument("--expect-hit-ratio", type=float, default=None,
                      metavar="R",
                      help="exit 1 unless the observed hit ratio "
                           "reaches R (CI smoke checks)")
    lg_p.add_argument("--json", default=None, metavar="PATH",
                      help="also write the summary as JSON")

    camp_p = sub.add_parser(
        "campaign",
        help="orchestrated experiment campaigns: journaled, parallel, "
             "resumable run-graphs with digest-verified artifacts",
    )
    camp_sub = camp_p.add_subparsers(dest="campaign_cmd", required=True)

    def _campaign_exec_flags(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--runner", choices=("inprocess", "pool", "remote-stub"),
            default="pool",
            help="execution backend: sequential in-process, a contained "
                 "process pool, or serialize job specs to DIR/queue for "
                 "an external executor (default pool)",
        )
        p.add_argument("--processes", type=int, default=None, metavar="N",
                       help="pool width (default: CPU count)")
        p.add_argument("--timeout", type=float, default=None, metavar="S",
                       help="per-job wall-clock timeout for the pool "
                            "runner (default: none)")
        p.add_argument("--max-jobs", type=int, default=None, metavar="N",
                       help="stop after N job results this pass — a "
                            "deterministic interrupt; exits 3 when jobs "
                            "remain (resume to continue)")
        p.add_argument("--live-export", default=None, metavar="PATH",
                       help="append per-job telemetry rows to a JSONL "
                            "file readable by 'repro watch'")
        p.add_argument("--watch", action="store_true",
                       help="render live campaign progress to stderr")
        p.add_argument("--no-color", action="store_true",
                       help="plain-line dashboard output (no ANSI)")

    crun_p = camp_sub.add_parser(
        "run", help="start (or continue) a preset campaign in DIR")
    crun_p.add_argument("dir", metavar="DIR",
                        help="campaign directory (definition, journal, "
                             "per-job artifacts)")
    crun_p.add_argument("--preset", default="mini",
                        choices=("mini", "cache-study", "consistency"),
                        help="which built-in run-graph to instantiate "
                             "(default mini)")
    crun_p.add_argument("--seeds", type=int, nargs="+", default=None,
                        metavar="S", help="seed axis (default: 1 2)")
    _campaign_exec_flags(crun_p)

    cres_p = camp_sub.add_parser(
        "resume",
        help="continue the campaign recorded in DIR/campaign.json; "
             "completed jobs are digest-verified and reused",
    )
    cres_p.add_argument("dir", metavar="DIR")
    _campaign_exec_flags(cres_p)

    cst_p = camp_sub.add_parser(
        "status", help="replay DIR's journal and scan artifacts")
    cst_p.add_argument("dir", metavar="DIR")

    cver_p = camp_sub.add_parser(
        "verify",
        help="digest-verify every committed artifact against the "
             "campaign definition (exit 1 on stale/corrupt)",
    )
    cver_p.add_argument("dir", metavar="DIR")
    cver_p.add_argument("--strict", action="store_true",
                        help="also fail on missing/incomplete jobs "
                             "(i.e. require a fully completed campaign)")

    return parser


def _anomaly_rule(spec: str) -> str:
    """``argparse`` type for ``--anomaly``: validate at parse time.

    A malformed rule fails before any simulation state is built, with
    the offending rule echoed and the grammar in the message.
    """
    from repro.obs.anomaly import AnomalyRule

    try:
        AnomalyRule.parse(spec)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(
            f"{exc} — expected <series><op><threshold> with op '>' or "
            f"'<', e.g. 'mac.backlog_max_s>5'"
        ) from None
    return spec


def _add_resilience_args(parser: argparse.ArgumentParser) -> None:
    """Request-resilience knobs (run/faults subcommands)."""
    parser.add_argument(
        "--resilience", action="store_true",
        help="enable the adaptive request-resilience layer: bounded "
             "retries with backoff, per-request deadline budgets, and "
             "per-region circuit breaking (see docs/RESILIENCE.md)",
    )
    parser.add_argument(
        "--retries", type=int, default=None, metavar="N",
        help="retry budget per remote phase (implies --resilience; "
             "default from SimulationConfig)",
    )
    parser.add_argument(
        "--deadline", type=float, default=None, metavar="S",
        help="total latency budget per request in seconds; 0 disables "
             "deadlines (implies --resilience)",
    )


def _resilience_overrides(args: argparse.Namespace) -> dict:
    """Config overrides from the --resilience/--retries/--deadline flags."""
    enabled = (
        args.resilience or args.retries is not None or args.deadline is not None
    )
    if not enabled:
        return {}
    out = {"resilience": True}
    if args.retries is not None:
        out["resilience_retries"] = args.retries
    if args.deadline is not None:
        out["request_deadline"] = args.deadline if args.deadline > 0 else None
    return out


def _add_kernel_args(parser: argparse.ArgumentParser) -> None:
    """``--fast-kernel`` / ``--no-fast-kernel`` escape hatch."""
    group = parser.add_mutually_exclusive_group()
    group.add_argument(
        "--fast-kernel", dest="fast_kernel", action="store_true", default=True,
        help="vectorized/cached event kernel (default; bit-identical "
             "results, enforced by the golden-digest equivalence tests)",
    )
    group.add_argument(
        "--no-fast-kernel", dest="fast_kernel", action="store_false",
        help="scalar reference kernel (the equivalence baseline)",
    )


def _add_workload_args(parser: argparse.ArgumentParser) -> None:
    """Simulation knobs shared by the trace/profile subcommands."""
    parser.add_argument("--nodes", type=int, default=40)
    parser.add_argument("--regions", type=int, default=9)
    parser.add_argument("--speed", type=float, default=6.0,
                        help="max node speed m/s (0 = static)")
    parser.add_argument("--cache", type=float, default=0.02,
                        help="cache fraction of database size")
    parser.add_argument(
        "--consistency",
        choices=["none", "plain-push", "pull-every-time", "push-adaptive-pull"],
        default="push-adaptive-pull",
    )
    parser.add_argument("--t-update", type=float, default=60.0,
                        help="mean inter-update time (s); 0 disables updates")
    parser.add_argument("--duration", type=float, default=400.0)
    parser.add_argument("--warmup", type=float, default=50.0)
    parser.add_argument("--items", type=int, default=500)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument(
        "--fault", action="append", default=[], metavar="SPEC",
        help="fault rule, e.g. 'drop:p=0.1,start=100,end=300'; repeatable",
    )
    parser.add_argument(
        "--trace-sample-rate", type=float, default=1.0, metavar="RATE",
        help="head-based trace sampling probability in [0, 1] "
             "(default 1.0 = trace every request; digest-neutral)",
    )
    _add_kernel_args(parser)


def _workload_config(args: argparse.Namespace, **overrides) -> SimulationConfig:
    from repro.faults.plan import FaultPlan

    plan = FaultPlan.parse(args.fault)
    overrides.setdefault(
        "trace_sample_rate", getattr(args, "trace_sample_rate", 1.0)
    )
    overrides.setdefault("fast_kernel", getattr(args, "fast_kernel", True))
    return SimulationConfig(
        n_nodes=args.nodes,
        n_regions=args.regions,
        max_speed=args.speed if args.speed > 0 else None,
        cache_fraction=args.cache,
        consistency=args.consistency,
        t_update=args.t_update if args.t_update > 0 else None,
        duration=args.duration,
        warmup=args.warmup,
        n_items=args.items,
        seed=args.seed,
        fault_plan=plan if plan else None,
        **overrides,
    )


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.obs.observers import Observers

    tracing = (
        args.trace_sample_rate is not None or args.export_trace is not None
    )
    sample_rate = (
        args.trace_sample_rate if args.trace_sample_rate is not None else 1.0
    )
    try:
        trace_overrides = dict(
            enable_tracing=tracing, trace_sample_rate=sample_rate
        ) if tracing else {}
        # The --watch flag family routes through the config (not the
        # Observers options) so its validation errors surface here as
        # exit code 2 like every other bad flag value.
        watch_overrides = {}
        if args.watch:
            watch_overrides["enable_dashboard"] = True
        if args.watch or args.no_color:
            watch_overrides["dashboard_mode"] = (
                "plain" if args.no_color else "auto"
            )
        if args.watch_interval is not None:
            watch_overrides["watch_interval"] = args.watch_interval
        if args.live_export is not None:
            watch_overrides["live_export_path"] = args.live_export
        if args.metrics_snapshot is not None:
            watch_overrides["metrics_snapshot_path"] = args.metrics_snapshot
        cfg = _run_config(
            args, **trace_overrides, **watch_overrides,
            **_resilience_overrides(args),
        )
        obs_opts = {}
        if args.anomaly:
            # Specs were validated at argparse time (_anomaly_rule).
            obs_opts.update(telemetry=True, anomaly_rules=tuple(args.anomaly))
        if args.bundle_dir is not None:
            obs_opts.update(recorder_dir=args.bundle_dir)
    except (ValueError, TypeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(f"running: {cfg.n_nodes} nodes, {cfg.n_regions} regions, "
          f"{cfg.duration:.0f}s virtual time ...", file=sys.stderr)
    observers = Observers(**obs_opts) if obs_opts else None
    net = PReCinCtNetwork(cfg, observers=observers)
    report = net.run()
    if args.report:
        from repro.analysis.summary import describe_run

        print(describe_run(net, report, topology=args.map))
        return 0
    print(report.row())
    print(
        f"  latency p50/p95/p99 = {report.latency_p50:.3f} / "
        f"{report.latency_p95:.3f} / {report.latency_p99:.3f} s"
    )
    for cls, count in sorted(report.served_by_class.items()):
        print(f"  served[{cls}] = {count}")
    if net.tracer is not None:
        print(f"  traces: {len(net.tracer)} completed, "
              f"{net.tracer.sampled_out} sampled out "
              f"(rate {cfg.trace_sample_rate})")
        if args.export_trace is not None:
            n = net.tracer.to_jsonl(args.export_trace)
            print(f"  wrote {n} trace(s) to {args.export_trace}")
    if net.anomaly is not None:
        print(f"  anomaly triggers: {net.anomaly.triggers} firing(s) "
              f"across {len(net.anomaly.rules)} rule(s)")
        for t, spec, value in net.anomaly.fired:
            print(f"    t={t:8.1f}s  {spec}  (observed {value:g})")
    if net.recorder is not None and net.recorder.manifests:
        print(f"  flight recorder: {len(net.recorder.manifests)} "
              f"bundle(s) under {args.bundle_dir}")
    live_sink = net.observers.live_sink
    if live_sink is not None:
        print(f"  live export: {live_sink.rows_written} row(s) to "
              f"{args.live_export}")
    metrics_sink = net.observers.metrics_sink
    if metrics_sink is not None:
        print(f"  metrics snapshot: {metrics_sink.snapshots_written} "
              f"rewrite(s) of {args.metrics_snapshot}")
    if args.map:
        from repro.analysis.topology_map import render_topology

        print(render_topology(net))
    return 0


def _run_config(args: argparse.Namespace, **overrides) -> SimulationConfig:
    overrides.setdefault("fast_kernel", getattr(args, "fast_kernel", True))
    return SimulationConfig(
        n_nodes=args.nodes,
        n_regions=args.regions,
        max_speed=args.speed if args.speed > 0 else None,
        mobility_model=args.mobility,
        cache_fraction=args.cache,
        replacement_policy=args.policy,
        consistency=args.consistency,
        t_update=args.t_update,
        duration=args.duration,
        warmup=args.warmup,
        n_items=args.items,
        seed=args.seed,
        enable_digest=args.digest,
        enable_prefetch=args.prefetch,
        dynamic_regions=args.dynamic_regions,
        churn_uptime=args.churn_uptime,
        **overrides,
    )


def _cmd_fig(args: argparse.Namespace) -> int:
    quick = dict(duration=500.0, warmup=100.0, seeds=(1,)) if args.quick else {}
    want = args.figure

    if want in ("4", "5", "all"):
        points = run_fig4_fig5(processes=args.processes, **quick)
        print("=== Figs. 4-5: latency / byte hit ratio vs cache size ===")
        print(format_cache_sweep(points))
    if want in ("6", "7", "8", "all"):
        points = run_fig6_fig7_fig8(processes=args.processes, **quick)
        print("=== Figs. 6-8: consistency schemes vs update rate ===")
        print(format_consistency_sweep(points))
    if want in ("9a", "all"):
        kw = dict(duration=400.0, warmup=80.0, seeds=(1,)) if args.quick else {}
        points = run_fig9a(**kw)
        print("=== Fig. 9(a): energy vs node count ===")
        print(format_energy_points(points, "nodes"))
    if want in ("9b", "all"):
        kw = dict(duration=400.0, warmup=80.0, seeds=(1,)) if args.quick else {}
        points = run_fig9b(**kw)
        print("=== Fig. 9(b): energy vs region count ===")
        print(format_energy_points(points, "regions"))
    return 0


def _cmd_theory(args: argparse.Namespace) -> int:
    model = TheoreticalModel(area_side=args.area, request_bytes=CONTROL_BYTES)
    print(f"{'nodes':>6} {'flooding(mJ)':>13} {'precinct(mJ)':>13}")
    for n in args.nodes:
        print(
            f"{n:>6} {model.flooding_energy_mj(n):>13.2f} "
            f"{model.precinct_energy_mj(n, args.regions):>13.2f}"
        )
    return 0


def _cmd_faults(args: argparse.Namespace) -> int:
    from repro.faults.plan import FaultPlan

    try:
        specs = list(FaultPlan.parse(args.fault).specs)
        if args.plan_file is not None:
            with open(args.plan_file, "r", encoding="utf-8") as fh:
                specs.extend(FaultPlan.from_json(fh.read()).specs)
    except (ValueError, TypeError, OSError) as exc:
        print(f"error: invalid fault plan: {exc}", file=sys.stderr)
        return 2
    plan = FaultPlan(tuple(specs))
    cfg = SimulationConfig(
        n_nodes=args.nodes,
        n_regions=args.regions,
        max_speed=args.speed if args.speed > 0 else None,
        cache_fraction=args.cache,
        consistency=args.consistency,
        t_update=args.t_update if args.t_update > 0 else None,
        duration=args.duration,
        warmup=args.warmup,
        n_items=args.items,
        seed=args.seed,
        fault_plan=plan if plan else None,
        **_resilience_overrides(args),
    )
    print(plan.describe(), file=sys.stderr)
    print(f"running: {cfg.n_nodes} nodes, {cfg.duration:.0f}s virtual time, "
          f"{len(plan)} fault rule(s) ...", file=sys.stderr)
    net = PReCinCtNetwork(cfg)
    if net.faults is not None and args.check_invariants:
        net.faults.check_invariants = True
    report = net.run()
    print(report.row())
    snapshot = net.stats.snapshot()
    fault_keys = sorted(
        name for name in snapshot
        if ".faults." in name or ".net.unicast_dropped" in name
        or ".net.broadcast_dropped" in name or ".resilience." in name
    )
    for name in fault_keys:
        print(f"  {name.split('count.', 1)[-1]} = {snapshot[name]:.0f}")
    return 0


def _cmd_audit(args: argparse.Namespace) -> int:
    from repro.faults.audit import (
        CANONICAL_SCENARIOS,
        audit_scenario,
        load_golden,
        refresh_golden,
    )

    if args.refresh_golden:
        if args.golden is None:
            print("--refresh-golden requires --golden PATH", file=sys.stderr)
            return 2
        entries = refresh_golden(
            args.golden, CANONICAL_SCENARIOS, seed=args.seed, runs=args.runs
        )
        for name, entry in sorted(entries.items()):
            print(f"{name:<10} seed={entry['seed']} eventlog={entry['eventlog']}")
        print(f"wrote {len(entries)} golden digest(s) to {args.golden}")
        return 0

    try:
        golden = load_golden(args.golden) if args.golden is not None else None
        result = audit_scenario(
            args.scenario, seed=args.seed, runs=args.runs, golden=golden,
            bundle_dir=args.bundle_dir,
            trace_path=args.export_trace,
            baseline_trace=args.baseline_trace,
        )
    except (ValueError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(f"scenario={result.scenario} seed={result.seed} runs={len(result.digests)}")
    for index, digest in enumerate(result.digests, start=1):
        print(f"  run {index}: eventlog={digest.eventlog}")
        print(f"         report  ={digest.report}")
    print(f"determinism: {'OK' if result.deterministic else 'FAILED'}")
    if result.golden_match is not None:
        print(f"golden:      {'OK' if result.golden_match else 'MISMATCH'}")
    if result.trace_diff is not None:
        regressions = result.trace_diff.regressions()
        print(f"phase regressions vs baseline trace: "
              f"{len(regressions) or 'none'}")
        print(result.trace_diff.render())
    for message in result.messages:
        print(message, file=sys.stderr)
    return 0 if result.ok else 1


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.obs.observers import Observers

    try:
        cfg = _workload_config(args, enable_tracing=True)
    except (ValueError, TypeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(f"running traced: {cfg.n_nodes} nodes, {cfg.duration:.0f}s "
          f"virtual time ...", file=sys.stderr)
    # Energy attribution rides along (digest-neutral) so every span
    # breakdown shows joules next to seconds.
    net = PReCinCtNetwork(cfg, observers=Observers(energy_attribution=True))
    report = net.run()
    tracer = net.tracer
    print(report.row())
    print(f"traces: {len(tracer)} completed, {tracer.dropped_traces} dropped, "
          f"{tracer.open_traces} still open at end of run")
    if cfg.trace_sample_rate < 1.0:
        print(f"sampling: rate {cfg.trace_sample_rate}, "
              f"{tracer.sampled_out} request(s) sampled out")

    print("outcomes:")
    total = max(len(tracer), 1)
    for outcome, count in sorted(
        tracer.outcome_counts().items(), key=lambda kv: -kv[1]
    ):
        print(f"  {outcome:<16} {count:>7}  ({100 * count / total:5.1f} %)")

    print("spans:")
    for name, count in sorted(
        tracer.span_counts().items(), key=lambda kv: -kv[1]
    ):
        print(f"  {name:<20} {count:>9}")

    attributor = net.energy_attribution
    if attributor is not None and attributor.charges_seen:
        print(f"attributed energy: {attributor.total() / 1e6:.3f} J "
              f"({attributor.charges_seen} radio charges)")
        for kind, uj in attributor.by_span().items():
            print(f"  {kind:<20} {uj / 1e6:>9.3f} J")

    traces = tracer.completed(args.outcome)
    if args.outcome is not None:
        print(f"filter outcome={args.outcome!r}: {len(traces)} trace(s)")
    slowest = sorted(traces, key=lambda t: t.latency, reverse=True)
    slowest = slowest[: max(args.slowest, 0)]
    if slowest:
        print(f"slowest {len(slowest)} request(s):")
    for trace in slowest:
        faults = f" faults={','.join(trace.fault_tags)}" if trace.fault_tags else ""
        print(f"  #{trace.trace_id} peer={trace.peer} key={trace.key} "
              f"outcome={trace.outcome} latency={trace.latency:.4f}s{faults}")
        phases = trace.phase_breakdown()
        for span in phases:
            tags = f"  [{','.join(span.fault_tags)}]" if span.fault_tags else ""
            print(f"      {span.name:<16} {span.duration:8.4f}s "
                  f"{span.energy_uj / 1000.0:10.3f} mJ{tags}")
        if phases:
            print(f"      {'(phase sum)':<16} "
                  f"{sum(s.duration for s in phases):8.4f}s "
                  f"{sum(s.energy_uj for s in phases) / 1000.0:10.3f} mJ")

    if args.export_jsonl is not None:
        n = tracer.to_jsonl(args.export_jsonl)
        print(f"wrote {n} trace(s) to {args.export_jsonl}")
    if args.export_chrome is not None:
        n = tracer.to_chrome_trace(args.export_chrome)
        print(f"wrote {n} trace event(s) to {args.export_chrome}")
    return 0


def _cmd_trace_diff(args: argparse.Namespace) -> int:
    from repro.obs.tracediff import diff_files

    try:
        diff = diff_files(args.trace_a, args.trace_b)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(diff.render(top=args.top))
    if args.json is not None:
        diff.write_json(args.json)
        print(f"wrote diff report to {args.json}")
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    try:
        cfg = _workload_config(args, enable_profiling=True)
    except (ValueError, TypeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(f"running profiled: {cfg.n_nodes} nodes, {cfg.duration:.0f}s "
          f"virtual time ...", file=sys.stderr)
    net = PReCinCtNetwork(cfg)
    report = net.run()
    print(report.row())
    profile = report.profile
    if not profile:
        print("no profiled sections recorded")
        return 0
    print(f"{'section':<24} {'calls':>10} {'total':>10} {'self':>10}")
    for name, rec in sorted(
        profile.items(), key=lambda kv: -kv[1]["self_s"]
    ):
        print(f"{name:<24} {rec['calls']:>10,.0f} "
              f"{rec['total_s']:>9.3f}s {rec['self_s']:>9.3f}s")
    if args.json is not None:
        import json

        from repro.obs.export import export_path

        payload = {
            "sections": {name: dict(rec) for name, rec in profile.items()},
            "self_total_s": sum(rec["self_s"] for rec in profile.values()),
        }
        path = export_path(args.json)
        path.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        print(f"wrote profile to {args.json}")
    return 0


def _cmd_energy(args: argparse.Namespace) -> int:
    from repro.analysis.energy_reconcile import reconcile_energy

    try:
        result = reconcile_energy(
            args.scenario, seed=args.seed, tolerance=args.tolerance
        )
    except (ValueError, TypeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(result.render())
    if args.json is not None:
        import json

        from repro.obs.export import export_path

        path = export_path(args.json)
        path.write_text(
            json.dumps(result.to_dict(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        print(f"wrote reconciliation report to {args.json}")
    return 0 if result.passed else 1


def _cmd_watch(args: argparse.Namespace) -> int:
    from repro.obs.watch import watch_file

    try:
        result = watch_file(
            args.path,
            follow=args.follow,
            interval=args.interval,
            mode="plain" if args.no_color else "auto",
            timeout=args.timeout,
        )
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if result.ended:
        status = "run finished"
    elif result.timed_out:
        status = f"no new records for {args.timeout:g}s"
    else:
        status = "end of file"
    print(f"watched {result.rows} row(s), {result.events} event(s) "
          f"({status})", file=sys.stderr)
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.experiments.bench import format_bench, run_bench, write_bench

    try:
        payload = run_bench(
            scenarios=args.scenario,
            quick=args.quick,
            repeats=args.repeats,
            reference=args.reference,
            bench_id=args.bench_id,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(format_bench(payload))
    if args.json is not None:
        write_bench(payload, args.json)
        print(f"wrote bench payload to {args.json}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.service import (
        CHAOS_GRAMMAR,
        EdgeCacheServer,
        ServiceConfig,
        ServiceFaultPlan,
    )

    try:
        fault_plan = (
            ServiceFaultPlan.parse(args.service_faults)
            if args.service_faults else None
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        print("supported fault specs:", file=sys.stderr)
        for line in CHAOS_GRAMMAR:
            print(f"  {line}", file=sys.stderr)
        return 2
    try:
        cfg = ServiceConfig(
            host=args.host,
            port=args.port,
            n_shards=args.shards,
            n_items=args.items,
            cache_fraction=args.cache,
            seed=args.seed,
            origin_latency=args.origin_latency,
            consistency=args.consistency,
            deadline=args.deadline if args.deadline > 0 else None,
            origin_retries=args.origin_retries,
            hedge_after=args.hedge_after,
            max_inflight=args.max_inflight if args.max_inflight > 0 else None,
            supervise=not args.no_supervise,
            heartbeat_timeout=args.heartbeat_timeout,
            hot_key_policy=args.hot_key_policy,
            hot_key_threshold=args.hot_key_threshold,
            fault_plan=fault_plan,
            telemetry_interval=args.telemetry_interval,
            live_export=args.live_export,
            metrics_snapshot=args.metrics_snapshot,
            watch=args.watch,
            dashboard_mode="plain" if args.no_color else "auto",
            duration=args.duration,
        )
    except (ValueError, TypeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return EdgeCacheServer(cfg).run()


def _cmd_loadgen(args: argparse.Namespace) -> int:
    import asyncio

    from repro.service import LoadGenConfig, run_loadgen

    try:
        cfg = LoadGenConfig(
            host=args.host,
            port=args.port,
            clients=args.clients,
            duration=args.duration,
            theta=args.theta,
            n_items=args.items,
            seed=args.seed,
            put_ratio=args.put_ratio,
            timeout=args.timeout,
            rate=args.rate,
            expect_hit_ratio=args.expect_hit_ratio,
        )
    except (ValueError, TypeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        summary = asyncio.run(run_loadgen(cfg))
    except OSError as exc:
        print(f"error: cannot reach {cfg.host}:{cfg.port} — {exc}",
              file=sys.stderr)
        return 2
    print(summary.render())
    if args.json is not None:
        import json

        from repro.obs.export import export_path

        path = export_path(args.json)
        path.write_text(
            json.dumps(summary.to_dict(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        print(f"wrote summary to {args.json}")
    if cfg.expect_hit_ratio is not None:
        if summary.hit_ratio < cfg.expect_hit_ratio:
            print(
                f"FAIL: hit ratio {summary.hit_ratio:.4f} below expected "
                f"{cfg.expect_hit_ratio:.4f}",
                file=sys.stderr,
            )
            return 1
        print(f"hit ratio {summary.hit_ratio:.4f} >= "
              f"{cfg.expect_hit_ratio:.4f} (OK)")
    return 0


def _campaign_runner(args: argparse.Namespace, root):
    """Build the Runtime the campaign flags describe."""
    from repro.experiments.orchestrator import (
        InProcessRunner,
        PoolRunner,
        RemoteStubRunner,
    )

    if args.runner == "inprocess":
        return InProcessRunner()
    if args.runner == "remote-stub":
        return RemoteStubRunner(root / "queue")
    return PoolRunner(processes=args.processes, timeout=args.timeout)


def _campaign_execute(args: argparse.Namespace, root, name: str,
                      graph) -> int:
    """Shared body of ``campaign run`` and ``campaign resume``."""
    from repro.experiments.orchestrator import execute_graph
    from repro.obs import Dashboard, JsonlLiveSink, TelemetryBus

    bus = dashboard = None
    if args.watch or args.live_export is not None:
        bus = TelemetryBus()
        if args.live_export is not None:
            bus.attach_sink(JsonlLiveSink(args.live_export))
        if args.watch:
            dashboard = Dashboard(
                bus,
                duration=float(len(graph)),
                interval=0.2,
                mode="plain" if args.no_color else "auto",
                title=f"campaign {name}",
            )
    try:
        summary = execute_graph(
            graph, _campaign_runner(args, root), root,
            name=name, bus=bus, max_jobs=args.max_jobs,
        )
    finally:
        if dashboard is not None:
            dashboard.close()
        if bus is not None:
            bus.close()

    print(summary.describe())
    for job_id in sorted(summary.errors):
        error = summary.errors[job_id].splitlines()
        detail = error[-1] if error else ""
        print(f"  {job_id}: {summary.statuses[job_id]} — {detail}",
              file=sys.stderr)
    if summary.errors:
        return 1
    if summary.interrupted:
        print(f"interrupted after {args.max_jobs} job(s) — "
              f"'repro campaign resume {root}' continues it")
        return 3
    if summary.count("deferred"):
        print(f"{summary.count('deferred')} job(s) serialized to "
              f"{root / 'queue'} for external execution")
    return 0


def _cmd_campaign(args: argparse.Namespace) -> int:
    from repro.experiments.orchestrator import (
        build_preset,
        definition_graph,
        definition_seeds,
        load_definition,
        replay_journal,
        save_definition,
        verify_artifact,
    )

    root = Path(args.dir)
    cmd = args.campaign_cmd

    if cmd == "run":
        seeds = definition_seeds(args.seeds)
        existing = load_definition(root)
        if existing is not None and (
            existing["preset"] != args.preset
            or (args.seeds is not None and existing["seeds"] != seeds)
        ):
            print(
                f"error: {root} already holds campaign "
                f"{existing['name']!r} (preset {existing['preset']}, "
                f"seeds {existing['seeds']}) — resume it or pick a "
                f"fresh directory",
                file=sys.stderr,
            )
            return 2
        if existing is not None:
            seeds = existing["seeds"]
        name = f"{args.preset}-campaign"
        root.mkdir(parents=True, exist_ok=True)
        save_definition(root, name=name, preset=args.preset, seeds=seeds)
        graph = build_preset(args.preset, seeds)
        return _campaign_execute(args, root, name, graph)

    definition = load_definition(root)
    if definition is None:
        print(f"error: no campaign.json in {root} — start one with "
              f"'repro campaign run {root}'", file=sys.stderr)
        return 2
    graph = definition_graph(definition)

    if cmd == "resume":
        return _campaign_execute(args, root, definition["name"], graph)

    checks = {spec.job_id: verify_artifact(root, spec) for spec in graph}

    if cmd == "status":
        state = replay_journal(root / "journal.jsonl")
        print(f"campaign {definition['name']!r} at {root}: "
              f"preset {definition['preset']}, "
              f"seeds {definition['seeds']}, {len(graph)} job(s)")
        if state.torn_lines:
            print(f"  journal: {state.torn_lines} torn line(s) "
                  f"(mid-write kill residue)")
        for job_id in sorted(checks):
            check = checks[job_id]
            journal_state = state.job_state.get(job_id, "-")
            starts = state.event_count("start", job_id)
            print(f"  {job_id:40s} artifact={check.status:12s} "
                  f"journal={journal_state:6s} starts={starts}")
        done = sum(1 for c in checks.values() if c.ok)
        print(f"{done}/{len(graph)} job(s) verified complete"
              + ("" if done == len(graph)
                 else f" — 'repro campaign resume {root}' continues it"))
        return 0

    # cmd == "verify"
    bad = {j: c for j, c in checks.items() if c.completed and not c.ok}
    incomplete = {j: c for j, c in checks.items() if not c.completed}
    for job_id in sorted(bad):
        check = bad[job_id]
        print(f"  {job_id}: {check.status} — {check.detail}",
              file=sys.stderr)
    if args.strict:
        for job_id in sorted(incomplete):
            print(f"  {job_id}: {incomplete[job_id].status}",
                  file=sys.stderr)
    n_ok = sum(1 for c in checks.values() if c.ok)
    print(f"campaign {definition['name']!r}: {n_ok}/{len(graph)} "
          f"artifact(s) verified, {len(bad)} bad, "
          f"{len(incomplete)} incomplete")
    if bad or (args.strict and incomplete):
        return 1
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "fig":
        return _cmd_fig(args)
    if args.command == "theory":
        return _cmd_theory(args)
    if args.command == "faults":
        return _cmd_faults(args)
    if args.command == "audit":
        return _cmd_audit(args)
    if args.command == "trace":
        if getattr(args, "trace_cmd", None) == "diff":
            return _cmd_trace_diff(args)
        return _cmd_trace(args)
    if args.command == "profile":
        return _cmd_profile(args)
    if args.command == "energy":
        return _cmd_energy(args)
    if args.command == "bench":
        return _cmd_bench(args)
    if args.command == "watch":
        return _cmd_watch(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "loadgen":
        return _cmd_loadgen(args)
    if args.command == "campaign":
        return _cmd_campaign(args)
    return 2  # pragma: no cover - argparse enforces choices


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
