"""Command-line interface.

Run single simulations or regenerate the paper's figures without writing
any Python::

    python -m repro run --nodes 80 --speed 6 --cache 0.02 --policy gd-ld
    python -m repro fig 4          # regenerate one figure's data series
    python -m repro fig all        # regenerate everything
    python -m repro theory --nodes 20 40 60 80

The CLI is a thin veneer over :mod:`repro.experiments`; anything it can
do is equally available through the library API.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis.theoretical import TheoreticalModel
from repro.config import SimulationConfig
from repro.core.messages import CONTROL_BYTES
from repro.core.network import PReCinCtNetwork
from repro.experiments.figures import (
    format_cache_sweep,
    format_consistency_sweep,
    format_energy_points,
    run_fig4_fig5,
    run_fig6_fig7_fig8,
    run_fig9a,
    run_fig9b,
)

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="PReCinCt (IPDPS 2005) reproduction — simulations and figures",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser("run", help="run one PReCinCt simulation")
    run_p.add_argument("--nodes", type=int, default=80)
    run_p.add_argument("--regions", type=int, default=9)
    run_p.add_argument("--speed", type=float, default=6.0,
                       help="max node speed m/s (0 = static)")
    run_p.add_argument("--cache", type=float, default=0.02,
                       help="cache fraction of database size")
    run_p.add_argument("--policy", choices=["gd-ld", "gd-size", "lru", "lfu"],
                       default="gd-ld")
    run_p.add_argument(
        "--mobility",
        choices=["random-waypoint", "manhattan", "group"],
        default="random-waypoint",
    )
    run_p.add_argument("--digest", action="store_true",
                       help="enable Summary-Cache regional digests")
    run_p.add_argument("--prefetch", action="store_true",
                       help="enable popularity prefetching")
    run_p.add_argument("--dynamic-regions", action="store_true",
                       help="enable adaptive region Merge/Separate")
    run_p.add_argument("--churn-uptime", type=float, default=None,
                       help="mean connected seconds per peer (enables churn)")
    run_p.add_argument("--map", action="store_true",
                       help="print an ASCII topology snapshot after the run")
    run_p.add_argument("--report", action="store_true",
                       help="print the full multi-section run summary")
    run_p.add_argument(
        "--consistency",
        choices=["none", "plain-push", "pull-every-time", "push-adaptive-pull"],
        default="none",
    )
    run_p.add_argument("--t-update", type=float, default=None,
                       help="mean inter-update time (s); omit for read-only")
    run_p.add_argument("--duration", type=float, default=1000.0)
    run_p.add_argument("--warmup", type=float, default=200.0)
    run_p.add_argument("--items", type=int, default=1000)
    run_p.add_argument("--seed", type=int, default=1)

    fig_p = sub.add_parser("fig", help="regenerate a paper figure's data")
    fig_p.add_argument("figure", choices=["4", "5", "6", "7", "8", "9a", "9b", "all"])
    fig_p.add_argument("--quick", action="store_true",
                       help="smaller/faster sweep (noisier curves)")

    th_p = sub.add_parser("theory", help="closed-form energy model (eqs. 11, 13)")
    th_p.add_argument("--nodes", type=int, nargs="+", default=[20, 40, 60, 80])
    th_p.add_argument("--regions", type=int, default=9)
    th_p.add_argument("--area", type=float, default=600.0)

    return parser


def _cmd_run(args: argparse.Namespace) -> int:
    cfg = SimulationConfig(
        n_nodes=args.nodes,
        n_regions=args.regions,
        max_speed=args.speed if args.speed > 0 else None,
        mobility_model=args.mobility,
        cache_fraction=args.cache,
        replacement_policy=args.policy,
        consistency=args.consistency,
        t_update=args.t_update,
        duration=args.duration,
        warmup=args.warmup,
        n_items=args.items,
        seed=args.seed,
        enable_digest=args.digest,
        enable_prefetch=args.prefetch,
        dynamic_regions=args.dynamic_regions,
        churn_uptime=args.churn_uptime,
    )
    print(f"running: {cfg.n_nodes} nodes, {cfg.n_regions} regions, "
          f"{cfg.duration:.0f}s virtual time ...", file=sys.stderr)
    net = PReCinCtNetwork(cfg)
    report = net.run()
    if args.report:
        from repro.analysis.summary import describe_run

        print(describe_run(net, report, topology=args.map))
        return 0
    print(report.row())
    print(
        f"  latency p50/p95/p99 = {report.latency_p50:.3f} / "
        f"{report.latency_p95:.3f} / {report.latency_p99:.3f} s"
    )
    for cls, count in sorted(report.served_by_class.items()):
        print(f"  served[{cls}] = {count}")
    if args.map:
        from repro.analysis.topology_map import render_topology

        print(render_topology(net))
    return 0


def _cmd_fig(args: argparse.Namespace) -> int:
    quick = dict(duration=500.0, warmup=100.0, seeds=(1,)) if args.quick else {}
    want = args.figure

    if want in ("4", "5", "all"):
        points = run_fig4_fig5(**quick)
        print("=== Figs. 4-5: latency / byte hit ratio vs cache size ===")
        print(format_cache_sweep(points))
    if want in ("6", "7", "8", "all"):
        points = run_fig6_fig7_fig8(**quick)
        print("=== Figs. 6-8: consistency schemes vs update rate ===")
        print(format_consistency_sweep(points))
    if want in ("9a", "all"):
        kw = dict(duration=400.0, warmup=80.0, seeds=(1,)) if args.quick else {}
        points = run_fig9a(**kw)
        print("=== Fig. 9(a): energy vs node count ===")
        print(format_energy_points(points, "nodes"))
    if want in ("9b", "all"):
        kw = dict(duration=400.0, warmup=80.0, seeds=(1,)) if args.quick else {}
        points = run_fig9b(**kw)
        print("=== Fig. 9(b): energy vs region count ===")
        print(format_energy_points(points, "regions"))
    return 0


def _cmd_theory(args: argparse.Namespace) -> int:
    model = TheoreticalModel(area_side=args.area, request_bytes=CONTROL_BYTES)
    print(f"{'nodes':>6} {'flooding(mJ)':>13} {'precinct(mJ)':>13}")
    for n in args.nodes:
        print(
            f"{n:>6} {model.flooding_energy_mj(n):>13.2f} "
            f"{model.precinct_energy_mj(n, args.regions):>13.2f}"
        )
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "fig":
        return _cmd_fig(args)
    if args.command == "theory":
        return _cmd_theory(args)
    return 2  # pragma: no cover - argparse enforces choices


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
