"""repro — a full reproduction of *PReCinCt: A Scheme for Cooperative
Caching in Mobile Peer-to-Peer Systems* (Shen, Joseph, Kumar, Das —
IPDPS 2005).

Quickstart
----------
>>> from repro import PReCinCtNetwork, SimulationConfig
>>> cfg = SimulationConfig(n_nodes=40, duration=300.0, warmup=50.0, seed=7)
>>> report = PReCinCtNetwork(cfg).run()
>>> report.requests_served > 0
True

Package layout
--------------
* :mod:`repro.sim` — discrete-event kernel, RNG streams, statistics.
* :mod:`repro.mobility` — random waypoint / stationary models.
* :mod:`repro.net` — unit-disk radio, MAC timing, spatial index.
* :mod:`repro.energy` — Feeney linear energy model and ledgers.
* :mod:`repro.routing` — GPSR (greedy + perimeter), flooding, stack.
* :mod:`repro.workload` — Zipf popularity, Poisson arrivals, database.
* :mod:`repro.core` — the PReCinCt scheme itself: regions, geographic
  hash, cooperative cache with GD-LD, consistency schemes, peers.
* :mod:`repro.analysis` — metric aggregation and the paper's
  closed-form energy model (eqs. 3-13).
* :mod:`repro.experiments` — ready-made experiment drivers for every
  figure in the paper's evaluation.
"""

from typing import List

__version__ = "1.0.0"

#: Re-exported name -> providing submodule.  Resolution is lazy
#: (PEP 562) so `import repro` — and hence `import repro.core` /
#: `import repro.resilience` — never drags in the simulation kernel or
#: the radio stack; the policy core stays importable in runtimes
#: without them (tests/test_import_isolation.py pins this).
_EXPORTS = {
    "EnergyLedger": "repro.energy",
    "EnergyParams": "repro.energy",
    "FaultPlan": "repro.faults",
    "FaultSpec": "repro.faults",
    "GDLDPolicy": "repro.core",
    "GDSizePolicy": "repro.core",
    "GeographicHash": "repro.core",
    "LRUPolicy": "repro.core",
    "PReCinCtNetwork": "repro.core",
    "PeerCache": "repro.core",
    "PlainPush": "repro.core",
    "PullEveryTime": "repro.core",
    "PushAdaptivePull": "repro.core",
    "Region": "repro.core",
    "RegionTable": "repro.core",
    "RequestMetrics": "repro.analysis",
    "RngRegistry": "repro.sim",
    "RunReport": "repro.analysis",
    "SimulationConfig": "repro.config",
    "Simulator": "repro.sim",
    "StatRegistry": "repro.sim",
    "TheoreticalModel": "repro.analysis",
}


def __getattr__(name: str):
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)


def __dir__() -> List[str]:
    return sorted(set(globals()) | set(_EXPORTS))

__all__ = [
    "EnergyLedger",
    "EnergyParams",
    "FaultPlan",
    "FaultSpec",
    "GDLDPolicy",
    "GDSizePolicy",
    "GeographicHash",
    "LRUPolicy",
    "PReCinCtNetwork",
    "PeerCache",
    "PlainPush",
    "PullEveryTime",
    "PushAdaptivePull",
    "Region",
    "RegionTable",
    "RequestMetrics",
    "RngRegistry",
    "RunReport",
    "SimulationConfig",
    "Simulator",
    "StatRegistry",
    "TheoreticalModel",
    "__version__",
]
