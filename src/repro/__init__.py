"""repro — a full reproduction of *PReCinCt: A Scheme for Cooperative
Caching in Mobile Peer-to-Peer Systems* (Shen, Joseph, Kumar, Das —
IPDPS 2005).

Quickstart
----------
>>> from repro import PReCinCtNetwork, SimulationConfig
>>> cfg = SimulationConfig(n_nodes=40, duration=300.0, warmup=50.0, seed=7)
>>> report = PReCinCtNetwork(cfg).run()
>>> report.requests_served > 0
True

Package layout
--------------
* :mod:`repro.sim` — discrete-event kernel, RNG streams, statistics.
* :mod:`repro.mobility` — random waypoint / stationary models.
* :mod:`repro.net` — unit-disk radio, MAC timing, spatial index.
* :mod:`repro.energy` — Feeney linear energy model and ledgers.
* :mod:`repro.routing` — GPSR (greedy + perimeter), flooding, stack.
* :mod:`repro.workload` — Zipf popularity, Poisson arrivals, database.
* :mod:`repro.core` — the PReCinCt scheme itself: regions, geographic
  hash, cooperative cache with GD-LD, consistency schemes, peers.
* :mod:`repro.analysis` — metric aggregation and the paper's
  closed-form energy model (eqs. 3-13).
* :mod:`repro.experiments` — ready-made experiment drivers for every
  figure in the paper's evaluation.
"""

from repro.analysis import RequestMetrics, RunReport, TheoreticalModel
from repro.config import SimulationConfig
from repro.core import (
    GDLDPolicy,
    GDSizePolicy,
    GeographicHash,
    LRUPolicy,
    PeerCache,
    PlainPush,
    PReCinCtNetwork,
    PullEveryTime,
    PushAdaptivePull,
    Region,
    RegionTable,
)
from repro.energy import EnergyLedger, EnergyParams
from repro.faults import FaultPlan, FaultSpec
from repro.sim import RngRegistry, Simulator, StatRegistry

__version__ = "1.0.0"

__all__ = [
    "EnergyLedger",
    "EnergyParams",
    "FaultPlan",
    "FaultSpec",
    "GDLDPolicy",
    "GDSizePolicy",
    "GeographicHash",
    "LRUPolicy",
    "PReCinCtNetwork",
    "PeerCache",
    "PlainPush",
    "PullEveryTime",
    "PushAdaptivePull",
    "Region",
    "RegionTable",
    "RequestMetrics",
    "RngRegistry",
    "RunReport",
    "SimulationConfig",
    "Simulator",
    "StatRegistry",
    "TheoreticalModel",
    "__version__",
]
