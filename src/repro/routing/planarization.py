"""Local graph planarization for GPSR perimeter mode.

GPSR's perimeter (face-routing) mode only terminates on a *planar*
subgraph of the radio connectivity graph.  Karp & Kung propose two local
planarizations a node can compute from its one-hop neighbor positions:

* the **Relative Neighborhood Graph** (RNG): keep edge (u, v) unless some
  witness w is strictly closer to both u and v than they are to each
  other, and
* the **Gabriel Graph** (GG): keep edge (u, v) unless some witness w lies
  strictly inside the circle whose diameter is uv.

GG keeps more edges (RNG is a subgraph of GG), giving shorter perimeter
detours; GPSR works with either.  The router defaults to Gabriel.

Both filters here are vectorized over the candidate neighbor set.

Beyond the per-call filters, two *not-per-call* layers amortize
planarization across the run:

* :class:`PlanarizationCache` — memoizes each node's planar neighbor
  set per topology generation (positions are frozen between spatial-
  index rebuilds, so the planar set is a pure function of
  ``(generation, node)``); the GPSR router consults it on every
  perimeter-mode hop instead of re-filtering per packet.
* :class:`IncrementalGabriel` — a delta-maintained dynamic Gabriel
  structure for join/leave/move workloads: an update dirties only the
  moved node and the nodes whose unit-disk neighborhoods it enters or
  leaves, and only those planar sets are re-filtered.  The property
  suite checks it edge-for-edge against full recomputation after
  arbitrary update sequences.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Set, Tuple

import numpy as np

__all__ = [
    "gabriel_neighbors",
    "relative_neighborhood",
    "PlanarizationCache",
    "IncrementalGabriel",
]


def gabriel_neighbors(
    self_pos: np.ndarray, neighbor_pos: np.ndarray, neighbor_ids: np.ndarray
) -> np.ndarray:
    """Gabriel-graph filter of a node's one-hop neighbors.

    Parameters
    ----------
    self_pos:
        ``(2,)`` position of the deciding node *u*.
    neighbor_pos:
        ``(K, 2)`` positions of its one-hop neighbors.
    neighbor_ids:
        ``(K,)`` node ids aligned with ``neighbor_pos``.

    Returns the subset of ``neighbor_ids`` kept by the GG criterion:
    edge (u, v) survives iff no other neighbor w lies strictly inside the
    circle with diameter uv.
    """
    k = neighbor_ids.shape[0]
    if k <= 1:
        return neighbor_ids
    self_pos = np.asarray(self_pos, dtype=float)
    midpoints = (neighbor_pos + self_pos) / 2.0  # (K, 2)
    radii_sq = np.sum((neighbor_pos - self_pos) ** 2, axis=1) / 4.0  # (K,)
    # dist_sq[i, j] = |w_j - midpoint_i|^2 for neighbor w_j vs edge i.
    diff = neighbor_pos[None, :, :] - midpoints[:, None, :]  # (K, K, 2)
    dist_sq = np.sum(diff * diff, axis=2)
    inside = dist_sq < radii_sq[:, None] * (1.0 - 1e-12)
    np.fill_diagonal(inside, False)  # v itself is on the circle, not a witness
    keep = ~inside.any(axis=1)
    return neighbor_ids[keep]


def relative_neighborhood(
    self_pos: np.ndarray, neighbor_pos: np.ndarray, neighbor_ids: np.ndarray
) -> np.ndarray:
    """Relative-neighborhood-graph filter of a node's one-hop neighbors.

    Edge (u, v) survives iff no witness w has
    ``max(|u-w|, |v-w|) < |u-v|``.
    """
    k = neighbor_ids.shape[0]
    if k <= 1:
        return neighbor_ids
    self_pos = np.asarray(self_pos, dtype=float)
    d_uv_sq = np.sum((neighbor_pos - self_pos) ** 2, axis=1)  # (K,)
    d_uw_sq = d_uv_sq  # distances from u to each neighbor, reused as witnesses
    diff = neighbor_pos[None, :, :] - neighbor_pos[:, None, :]  # (K, K, 2)
    d_vw_sq = np.sum(diff * diff, axis=2)  # (K, K): [v, w]
    worse = np.maximum(d_uw_sq[None, :], d_vw_sq) < d_uv_sq[:, None] * (1.0 - 1e-12)
    np.fill_diagonal(worse, False)
    keep = ~worse.any(axis=1)
    return neighbor_ids[keep]


class PlanarizationCache:
    """Per-topology-generation memo of per-node planar neighbor sets.

    Positions are constant within a spatial-index generation, so a
    node's planar filter output — which depends only on its own position
    and its neighbors' ids/positions — is computed at most once per
    generation instead of once per forwarded packet.  The memo stores
    the planarizer's exact output array, so cached and uncached routing
    decisions are bit-identical.
    """

    def __init__(self, planarizer: Callable[..., np.ndarray] = gabriel_neighbors):
        self.planarizer = planarizer
        self._generation: Optional[int] = None
        self._sets: Dict[int, np.ndarray] = {}
        self.hits = 0
        self.misses = 0

    def sync(self, generation: int) -> None:
        """Drop all memos when the topology generation advanced."""
        if generation != self._generation:
            self._generation = generation
            self._sets.clear()

    def planar(
        self,
        node_id: int,
        self_pos: np.ndarray,
        neighbor_pos: np.ndarray,
        neighbor_ids: np.ndarray,
    ) -> np.ndarray:
        """Planar subset of ``neighbor_ids``, memoized for this generation."""
        cached = self._sets.get(node_id)
        if cached is not None:
            self.hits += 1
            return cached
        self.misses += 1
        result = self.planarizer(self_pos, neighbor_pos, neighbor_ids)
        self._sets[node_id] = result
        return result


class IncrementalGabriel:
    """Delta-maintained Gabriel planarization of a dynamic unit-disk graph.

    Nodes join, leave, and move; :meth:`planar_neighbors` answers from
    maintained state instead of recomputing the whole graph.  The GG
    criterion is *local*: node ``u``'s planar set depends only on
    ``pos(u)`` and the ids/positions of nodes within ``radius`` of it
    (every witness for an edge ``(u, v)`` lies inside the circle with
    diameter ``uv``, hence within ``radius`` of ``u``).  An update to
    node ``x`` therefore dirties exactly ``{x} ∪ N(x_old) ∪ N(x_new)``,
    and only those planar sets are re-filtered — on a bounded-density
    plane that is O(1) filter runs per update versus O(n) for full
    recomputation.

    Neighbor candidates are found through the same uniform cell grid as
    :class:`~repro.net.topology.SpatialGrid` (cell side = ``radius``).
    Per-node neighbor ids are kept in ascending order, making
    :meth:`edges` / :meth:`planar_neighbors` deterministic for the
    property suite.
    """

    def __init__(self, radius: float):
        if radius <= 0:
            raise ValueError(f"radius must be positive, got {radius}")
        self.radius = float(radius)
        self._pos: Dict[int, Tuple[float, float]] = {}
        self._cell_members: Dict[Tuple[int, int], Set[int]] = {}
        self._planar: Dict[int, np.ndarray] = {}
        self.refilter_count = 0  # filter runs, for delta-vs-full accounting

    # -- cell index ------------------------------------------------------

    def _cell(self, pos: Tuple[float, float]) -> Tuple[int, int]:
        return (int(np.floor(pos[0] / self.radius)), int(np.floor(pos[1] / self.radius)))

    def _neighbors_of_point(
        self, pos: Tuple[float, float], exclude: Optional[int] = None
    ) -> List[int]:
        """Ids within ``radius`` of ``pos`` (inclusive), ascending."""
        cx, cy = self._cell(pos)
        r_sq = self.radius * self.radius
        found: List[int] = []
        for dx in (-1, 0, 1):
            for dy in (-1, 0, 1):
                for nid in self._cell_members.get((cx + dx, cy + dy), ()):
                    if nid == exclude:
                        continue
                    px, py = self._pos[nid]
                    if (px - pos[0]) ** 2 + (py - pos[1]) ** 2 <= r_sq:
                        found.append(nid)
        found.sort()
        return found

    # -- updates ---------------------------------------------------------

    def join(self, node_id: int, pos: Tuple[float, float]) -> None:
        """Insert a new node and re-filter only the affected neighborhoods."""
        if node_id in self._pos:
            raise ValueError(f"node {node_id} already present")
        pos = (float(pos[0]), float(pos[1]))
        affected = self._neighbors_of_point(pos)
        self._pos[node_id] = pos
        self._cell_members.setdefault(self._cell(pos), set()).add(node_id)
        self._refilter([node_id, *affected])

    def leave(self, node_id: int) -> None:
        """Remove a node; its former neighbors get re-filtered."""
        pos = self._pos.pop(node_id, None)
        if pos is None:
            raise KeyError(f"node {node_id} not present")
        cell = self._cell(pos)
        members = self._cell_members.get(cell)
        if members is not None:
            members.discard(node_id)
            if not members:
                del self._cell_members[cell]
        self._planar.pop(node_id, None)
        self._refilter(self._neighbors_of_point(pos))

    def move(self, node_id: int, pos: Tuple[float, float]) -> None:
        """Relocate a node; old and new neighborhoods get re-filtered."""
        old = self._pos.get(node_id)
        if old is None:
            raise KeyError(f"node {node_id} not present")
        pos = (float(pos[0]), float(pos[1]))
        dirty = set(self._neighbors_of_point(old, exclude=node_id))
        old_cell, new_cell = self._cell(old), self._cell(pos)
        if old_cell != new_cell:
            members = self._cell_members.get(old_cell)
            if members is not None:
                members.discard(node_id)
                if not members:
                    del self._cell_members[old_cell]
            self._cell_members.setdefault(new_cell, set()).add(node_id)
        self._pos[node_id] = pos
        dirty.update(self._neighbors_of_point(pos, exclude=node_id))
        dirty.add(node_id)
        self._refilter(dirty)

    def _refilter(self, node_ids: Iterable[int]) -> None:
        for nid in node_ids:
            pos = self._pos.get(nid)
            if pos is None:
                continue
            neighbor_ids = np.asarray(
                self._neighbors_of_point(pos, exclude=nid), dtype=np.intp
            )
            if neighbor_ids.size == 0:
                self._planar[nid] = neighbor_ids
            else:
                neighbor_pos = np.array([self._pos[j] for j in neighbor_ids])
                self._planar[nid] = gabriel_neighbors(
                    np.asarray(pos), neighbor_pos, neighbor_ids
                )
            self.refilter_count += 1

    # -- queries ---------------------------------------------------------

    def __len__(self) -> int:
        return len(self._pos)

    def __contains__(self, node_id: int) -> bool:
        return node_id in self._pos

    def planar_neighbors(self, node_id: int) -> np.ndarray:
        """Gabriel-kept neighbor ids of ``node_id``, ascending."""
        if node_id not in self._pos:
            raise KeyError(f"node {node_id} not present")
        return self._planar[node_id]

    def edges(self) -> Set[Tuple[int, int]]:
        """All Gabriel edges as ``(min_id, max_id)`` pairs.

        The GG keep-criterion is symmetric on a unit-disk graph (every
        witness of edge ``(u, v)`` is in range of both endpoints), so
        collecting each node's kept set yields each edge from both
        sides; the property suite asserts exactly that by comparing
        against per-node full recomputation.
        """
        out: Set[Tuple[int, int]] = set()
        for u, kept in self._planar.items():
            for v in kept.tolist():
                out.add((u, v) if u < v else (v, u))
        return out
