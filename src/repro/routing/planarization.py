"""Local graph planarization for GPSR perimeter mode.

GPSR's perimeter (face-routing) mode only terminates on a *planar*
subgraph of the radio connectivity graph.  Karp & Kung propose two local
planarizations a node can compute from its one-hop neighbor positions:

* the **Relative Neighborhood Graph** (RNG): keep edge (u, v) unless some
  witness w is strictly closer to both u and v than they are to each
  other, and
* the **Gabriel Graph** (GG): keep edge (u, v) unless some witness w lies
  strictly inside the circle whose diameter is uv.

GG keeps more edges (RNG is a subgraph of GG), giving shorter perimeter
detours; GPSR works with either.  The router defaults to Gabriel.

Both filters here are vectorized over the candidate neighbor set.
"""

from __future__ import annotations

import numpy as np

__all__ = ["gabriel_neighbors", "relative_neighborhood"]


def gabriel_neighbors(
    self_pos: np.ndarray, neighbor_pos: np.ndarray, neighbor_ids: np.ndarray
) -> np.ndarray:
    """Gabriel-graph filter of a node's one-hop neighbors.

    Parameters
    ----------
    self_pos:
        ``(2,)`` position of the deciding node *u*.
    neighbor_pos:
        ``(K, 2)`` positions of its one-hop neighbors.
    neighbor_ids:
        ``(K,)`` node ids aligned with ``neighbor_pos``.

    Returns the subset of ``neighbor_ids`` kept by the GG criterion:
    edge (u, v) survives iff no other neighbor w lies strictly inside the
    circle with diameter uv.
    """
    k = neighbor_ids.shape[0]
    if k <= 1:
        return neighbor_ids
    self_pos = np.asarray(self_pos, dtype=float)
    midpoints = (neighbor_pos + self_pos) / 2.0  # (K, 2)
    radii_sq = np.sum((neighbor_pos - self_pos) ** 2, axis=1) / 4.0  # (K,)
    # dist_sq[i, j] = |w_j - midpoint_i|^2 for neighbor w_j vs edge i.
    diff = neighbor_pos[None, :, :] - midpoints[:, None, :]  # (K, K, 2)
    dist_sq = np.sum(diff * diff, axis=2)
    inside = dist_sq < radii_sq[:, None] * (1.0 - 1e-12)
    np.fill_diagonal(inside, False)  # v itself is on the circle, not a witness
    keep = ~inside.any(axis=1)
    return neighbor_ids[keep]


def relative_neighborhood(
    self_pos: np.ndarray, neighbor_pos: np.ndarray, neighbor_ids: np.ndarray
) -> np.ndarray:
    """Relative-neighborhood-graph filter of a node's one-hop neighbors.

    Edge (u, v) survives iff no witness w has
    ``max(|u-w|, |v-w|) < |u-v|``.
    """
    k = neighbor_ids.shape[0]
    if k <= 1:
        return neighbor_ids
    self_pos = np.asarray(self_pos, dtype=float)
    d_uv_sq = np.sum((neighbor_pos - self_pos) ** 2, axis=1)  # (K,)
    d_uw_sq = d_uv_sq  # distances from u to each neighbor, reused as witnesses
    diff = neighbor_pos[None, :, :] - neighbor_pos[:, None, :]  # (K, K, 2)
    d_vw_sq = np.sum(diff * diff, axis=2)  # (K, K): [v, w]
    worse = np.maximum(d_uw_sq[None, :], d_vw_sq) < d_uv_sq[:, None] * (1.0 - 1e-12)
    np.fill_diagonal(worse, False)
    keep = ~worse.any(axis=1)
    return neighbor_ids[keep]
