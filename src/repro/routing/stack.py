"""Network stack: multiplexes GPSR and flooding over the single radio upcall.

The :class:`~repro.net.network.WirelessNetwork` delivers every received
packet to one handler.  :class:`NetworkStack` owns that handler and
dispatches on envelope type:

* :class:`GeoEnvelope` — handed to the GPSR router; if the router reports
  arrival, the inner payload goes up to the application handler.
* :class:`FloodEnvelope` — handed to the flooder; first reception at each
  in-scope node goes up to the application handler.
* anything else — a bare one-hop message, delivered directly.

The application layer (the peer protocol in :mod:`repro.core.peer`)
registers a single ``handler(node_id, inner_payload, packet)`` upcall.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.geom import Point
from repro.net.network import WirelessNetwork
from repro.net.packet import Packet
from repro.routing.envelopes import FloodEnvelope, GeoEnvelope
from repro.routing.flooding import Flooder
from repro.routing.gpsr import GpsrRouter

__all__ = ["NetworkStack"]

AppHandler = Callable[[int, Any, Packet], None]
DropHandler = Callable[[int, Packet], None]
InterceptHandler = Callable[[int, Any, Packet], bool]
AppBatchHandler = Callable[[Any, Any, Packet], bool]


class NetworkStack:
    """Routing facade used by the peer protocol layer."""

    def __init__(self, network: WirelessNetwork):
        self.network = network
        self.sim = network.sim
        self.stats = network.stats
        self.flooder = Flooder(network)
        self.router = GpsrRouter(network, on_drop=self._on_route_drop)
        self._app_handler: Optional[AppHandler] = None
        self._drop_handler: Optional[DropHandler] = None
        self._intercept_handler: Optional[InterceptHandler] = None
        self._app_batch_handler: Optional[AppBatchHandler] = None
        network.set_receive_handler(self._on_receive)
        network.set_batch_receive_handler(self._on_receive_batch)

    # -- wiring ----------------------------------------------------------

    def set_app_handler(self, handler: AppHandler) -> None:
        self._app_handler = handler

    def set_app_batch_handler(self, handler: AppBatchHandler) -> None:
        """Register the whole-broadcast application upcall.

        Called as ``handler(receiver_ids, inner, packet)`` with every
        live receiver of one bare (non-enveloped) broadcast; returning
        True consumes the batch, False falls back to one
        :meth:`set_app_handler` upcall per receiver.  Lets the
        application absorb per-receiver-stateless traffic (HELLO
        beacons) in O(1) instead of O(receivers) — observable effects
        must be identical either way.
        """
        self._app_batch_handler = handler

    def set_drop_handler(self, handler: DropHandler) -> None:
        """Called when a geo-routed packet is dropped (routing failure)."""
        self._drop_handler = handler

    def set_intercept_handler(self, handler: InterceptHandler) -> None:
        """Give the application a chance to absorb a geo-routed packet at
        an intermediate hop.

        Enables the paper's en-route cache serving (§3.1): "If a peer
        along the path to the home region has the requested data item d,
        then it serves the request without forwarding it further."  The
        handler returns True to absorb (the packet is delivered locally
        and not forwarded), False to let routing continue.
        """
        self._intercept_handler = handler

    # -- sending ---------------------------------------------------------

    def geo_send(
        self,
        src: int,
        inner: Any,
        size_bytes: float,
        dest_point: Point,
        dest_node: Optional[int] = None,
        region: Optional[tuple] = None,
        max_hops: int = 128,
        category: str = "data",
    ) -> GeoEnvelope:
        """Geo-route ``inner`` from ``src`` towards a point/region/node."""
        envelope = GeoEnvelope(
            inner=inner,
            dest_point=dest_point,
            dest_node=dest_node,
            region=region,
            hops_remaining=max_hops,
        )
        self.router.send(src, envelope, size_bytes, category=category)
        return envelope

    def flood_send(
        self,
        src: int,
        inner: Any,
        size_bytes: float,
        region: Optional[tuple] = None,
        ttl: Optional[int] = None,
        record_path: bool = False,
        category: str = "data",
    ) -> FloodEnvelope:
        """Flood ``inner`` from ``src`` (regional, TTL-bounded, or global)."""
        envelope = FloodEnvelope(
            inner=inner, origin=src, region=region, ttl=ttl, record_path=record_path
        )
        self.flooder.flood(src, envelope, size_bytes, category=category)
        return envelope

    def direct_send(
        self, src: int, dst: int, inner: Any, size_bytes: float, category: str = "data"
    ) -> bool:
        """One-hop unicast of a bare payload (neighbors only)."""
        packet = Packet(
            payload=inner,
            size_bytes=size_bytes,
            src=src,
            dst=dst,
            created_at=self.sim.now,
            category=category,
        )
        return self.network.unicast(src, dst, packet)

    # -- receiving -------------------------------------------------------

    def _on_receive(self, node_id: int, packet: Packet) -> None:
        payload = packet.payload
        if isinstance(payload, GeoEnvelope):
            if self._intercept_handler is not None and not self.router.arrived(
                node_id, payload
            ):
                if self._intercept_handler(node_id, payload.inner, packet):
                    self.stats.count("stack.intercepted")
                    self._deliver(node_id, payload.inner, packet)
                    return
            if self.router.handle(node_id, packet):
                self._deliver(node_id, payload.inner, packet)
        elif isinstance(payload, FloodEnvelope):
            if self.flooder.handle(node_id, packet):
                # The envelope (with its reverse path) stays reachable via
                # packet.payload for baseline reverse-path responses.
                self._deliver(node_id, payload.inner, packet)
        else:
            self._deliver(node_id, payload, packet)

    def _on_receive_batch(self, receivers, packet: Packet) -> bool:
        """Whole-broadcast upcall from the fast kernel.

        Only bare payloads are batchable: geo/flood envelopes carry
        per-receiver routing state (dedup sets, region scoping) and take
        the per-receiver path.
        """
        payload = packet.payload
        if isinstance(payload, GeoEnvelope):
            return False
        if isinstance(payload, FloodEnvelope):
            if self.flooder.profile is not None:
                # Keep the "routing.flood" profile section's per-call
                # accounting intact under the profiler.
                return False
            self.flooder.handle_batch(receivers, packet, self._deliver)
            return True
        if self._app_batch_handler is not None:
            return self._app_batch_handler(receivers, payload, packet)
        return False

    def _deliver(self, node_id: int, inner: Any, packet: Packet) -> None:
        if self._app_handler is not None:
            self._app_handler(node_id, inner, packet)

    def _on_route_drop(self, node_id: int, packet: Packet) -> None:
        if self._drop_handler is not None:
            self._drop_handler(node_id, packet)
