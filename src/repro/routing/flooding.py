"""Flooding: network-wide, region-scoped, and TTL-bounded.

Three uses in the reproduction:

* **network-wide flooding** — the baseline retrieval scheme of §5.2.1 and
  the invalidation transport of the Plain-Push consistency scheme;
* **localized (regional) flooding** — PReCinCt's in-region resolution:
  after a request reaches its home region, it is flooded only among
  nodes inside the region polygon ("Peers located outside the home
  region drop the request message without further processing");
* **TTL-bounded flooding** — the expanding-ring baseline (Lv et al.),
  which retries with growing TTLs until the data is found.

Duplicate suppression is per (node, logical packet id): every node
processes and rebroadcasts a given flood exactly once, exactly as in the
paper's cost model where a flood is processed by every node once.
"""

from __future__ import annotations

from typing import Optional, Set, Tuple

from repro.geom import point_in_polygon
from repro.net.network import WirelessNetwork
from repro.net.packet import Packet
from repro.routing.envelopes import FloodEnvelope

__all__ = ["Flooder"]


class Flooder:
    """Flooding engine bound to a :class:`WirelessNetwork`."""

    def __init__(self, network: WirelessNetwork):
        self.network = network
        self.stats = network.stats
        # (packet_id, node_id) pairs already processed.
        self._seen: Set[Tuple[int, int]] = set()
        #: Optional :class:`repro.obs.profile.PerfProfiler`; when set,
        #: flood handling is timed under "routing.flood".
        self.profile = None

    def flood(
        self,
        origin: int,
        envelope: FloodEnvelope,
        size_bytes: float,
        category: str = "data",
    ) -> Packet:
        """Start a flood at ``origin``.

        The origin itself counts as having processed the flood (it will
        not re-process an echo of its own packet).
        """
        if envelope.record_path:
            envelope = envelope.hop_copy(via=origin, ttl=envelope.ttl)
        packet = Packet(
            payload=envelope,
            size_bytes=size_bytes,
            src=origin,
            created_at=self.network.sim.now,
            category=category,
        )
        self._seen.add((packet.packet_id, origin))
        self.stats.count("flood.initiated")
        self.network.broadcast(origin, packet)
        return packet

    def handle(self, node_id: int, packet: Packet) -> bool:
        """Process a flood packet at a receiving node.

        Returns True exactly once per (node, flood): the first reception,
        in which case the caller should deliver the inner payload to the
        application layer.  Rebroadcast happens here when scope and TTL
        allow.
        """
        if self.profile is not None:
            with self.profile.perf_section("routing.flood"):
                return self._handle_impl(node_id, packet)
        return self._handle_impl(node_id, packet)

    def _handle_impl(self, node_id: int, packet: Packet) -> bool:
        key = (packet.packet_id, node_id)
        if key in self._seen:
            self.stats.count("flood.duplicate")
            return False
        self._seen.add(key)
        envelope: FloodEnvelope = packet.payload

        # Region scoping: out-of-region nodes drop without processing.
        if envelope.region is not None:
            pos = self.network.position_of(node_id)
            if not point_in_polygon(pos, envelope.region):
                self.stats.count("flood.out_of_scope")
                return False

        # Rebroadcast if TTL allows.
        ttl = envelope.ttl
        if ttl is None:
            self._rebroadcast(node_id, packet, None)
        elif ttl > 0:
            self._rebroadcast(node_id, packet, ttl - 1)
        return True

    def _rebroadcast(self, node_id: int, packet: Packet, ttl: Optional[int]) -> None:
        envelope: FloodEnvelope = packet.payload
        hop_env = envelope.hop_copy(via=node_id, ttl=ttl)
        hop = Packet(
            payload=hop_env,
            size_bytes=packet.size_bytes,
            src=node_id,
            hops=packet.hops + 1,
            created_at=packet.created_at,
            packet_id=packet.packet_id,
            category=packet.category,
        )
        self.stats.count("flood.rebroadcast")
        self.network.broadcast(node_id, hop)

    def forget(self, packet_id: int) -> None:
        """Release duplicate-suppression state for a finished flood."""
        self._seen = {k for k in self._seen if k[0] != packet_id}
