"""Flooding: network-wide, region-scoped, and TTL-bounded.

Three uses in the reproduction:

* **network-wide flooding** — the baseline retrieval scheme of §5.2.1 and
  the invalidation transport of the Plain-Push consistency scheme;
* **localized (regional) flooding** — PReCinCt's in-region resolution:
  after a request reaches its home region, it is flooded only among
  nodes inside the region polygon ("Peers located outside the home
  region drop the request message without further processing");
* **TTL-bounded flooding** — the expanding-ring baseline (Lv et al.),
  which retries with growing TTLs until the data is found.

Duplicate suppression is per (node, logical packet id): every node
processes and rebroadcasts a given flood exactly once, exactly as in the
paper's cost model where a flood is processed by every node once.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.net.network import WirelessNetwork
from repro.net.packet import Packet
from repro.routing.envelopes import FloodEnvelope

__all__ = ["Flooder"]


class Flooder:
    """Flooding engine bound to a :class:`WirelessNetwork`."""

    def __init__(self, network: WirelessNetwork):
        self.network = network
        self.stats = network.stats
        # Duplicate suppression: packet_id -> bool[n_nodes] "processed"
        # mask.  A whole receiver batch dedups in one fancy-indexed read
        # instead of per-node set probes.
        self._seen: Dict[int, np.ndarray] = {}
        self._n_nodes = network.n_nodes
        #: Optional :class:`repro.obs.profile.PerfProfiler`; when set,
        #: flood handling is timed under "routing.flood".
        self.profile = None

    def flood(
        self,
        origin: int,
        envelope: FloodEnvelope,
        size_bytes: float,
        category: str = "data",
    ) -> Packet:
        """Start a flood at ``origin``.

        The origin itself counts as having processed the flood (it will
        not re-process an echo of its own packet).
        """
        if envelope.record_path:
            envelope = envelope.hop_copy(via=origin, ttl=envelope.ttl)
        packet = Packet(
            payload=envelope,
            size_bytes=size_bytes,
            src=origin,
            created_at=self.network.sim.now,
            category=category,
        )
        seen = self._seen[packet.packet_id] = np.zeros(self._n_nodes, dtype=bool)
        seen[origin] = True
        self.stats.count("flood.initiated")
        self.network.broadcast(origin, packet)
        return packet

    def handle(self, node_id: int, packet: Packet) -> bool:
        """Process a flood packet at a receiving node.

        Returns True exactly once per (node, flood): the first reception,
        in which case the caller should deliver the inner payload to the
        application layer.  Rebroadcast happens here when scope and TTL
        allow.
        """
        if self.profile is not None:
            with self.profile.perf_section("routing.flood"):
                return self._handle_impl(node_id, packet)
        return self._handle_impl(node_id, packet)

    def _handle_impl(self, node_id: int, packet: Packet) -> bool:
        seen = self._seen.get(packet.packet_id)
        if seen is None:
            seen = self._seen[packet.packet_id] = np.zeros(self._n_nodes, dtype=bool)
        if seen[node_id]:
            self.stats.count("flood.duplicate")
            return False
        seen[node_id] = True
        envelope: FloodEnvelope = packet.payload

        # Region scoping: out-of-region nodes drop without processing.
        # Membership goes through the network's per-generation memo (the
        # same polygon is re-tested by every member of a flooded region).
        if envelope.region is not None:
            if not self.network.node_in_polygon(node_id, envelope.region):
                self.stats.count("flood.out_of_scope")
                return False

        # Rebroadcast if TTL allows.
        ttl = envelope.ttl
        if ttl is None:
            self._rebroadcast(node_id, packet, None)
        elif ttl > 0:
            self._rebroadcast(node_id, packet, ttl - 1)
        return True

    def handle_batch(self, receivers, packet: Packet, deliver) -> None:
        """Process one broadcast's whole receiver batch in order.

        ``receivers`` must be free of intra-batch duplicates — the
        caller passes one broadcast's neighbor array, whose ids are
        unique by construction (duplicate *suppression* is about the
        same node hearing different broadcasts of the same flood).

        Effect-for-effect identical to calling :meth:`handle` per
        receiver (fresh receivers keep their batch order, so
        rebroadcasts draw RNG jitter and schedule events in the same
        sequence); the duplicate and out-of-scope counters are bumped
        once per batch, which yields the same totals.
        ``deliver(node_id, inner, packet)`` is invoked for each
        first-time in-scope reception.
        """
        seen = self._seen.get(packet.packet_id)
        if seen is None:
            seen = self._seen[packet.packet_id] = np.zeros(self._n_nodes, dtype=bool)
        dup_mask = seen[receivers]
        duplicates = int(dup_mask.sum())
        fresh = receivers[~dup_mask] if duplicates else receivers
        seen[fresh] = True
        envelope: FloodEnvelope = packet.payload
        region = envelope.region
        network = self.network
        out_of_scope = 0
        scalar_scope_check = False
        if region is not None and fresh.size:
            members = network.polygon_members(region)
            if members is None:
                scalar_scope_check = True  # unhashable region: per-node test
            else:
                in_scope = members[fresh]
                out_of_scope = fresh.size - int(in_scope.sum())
                if out_of_scope:
                    fresh = fresh[in_scope]
        ttl = envelope.ttl
        next_ttl = None if ttl is None else ttl - 1
        inner = envelope.inner
        for node_id in fresh.tolist():
            if scalar_scope_check and not network.node_in_polygon(node_id, region):
                out_of_scope += 1
                continue
            if ttl is None or ttl > 0:
                self._rebroadcast(node_id, packet, next_ttl)
            deliver(node_id, inner, packet)
        if duplicates:
            self.stats.count("flood.duplicate", duplicates)
        if out_of_scope:
            self.stats.count("flood.out_of_scope", out_of_scope)

    def _rebroadcast(self, node_id: int, packet: Packet, ttl: Optional[int]) -> None:
        envelope: FloodEnvelope = packet.payload
        hop_env = envelope.hop_copy(via=node_id, ttl=ttl)
        hop = Packet(
            payload=hop_env,
            size_bytes=packet.size_bytes,
            src=node_id,
            hops=packet.hops + 1,
            created_at=packet.created_at,
            packet_id=packet.packet_id,
            category=packet.category,
        )
        self.stats.count("flood.rebroadcast")
        self.network.broadcast(node_id, hop)

    def forget(self, packet_id: int) -> None:
        """Release duplicate-suppression state for a finished flood."""
        self._seen.pop(packet_id, None)
