"""Multi-hop routing on top of the one-hop radio.

Implements the two retrieval substrates the paper evaluates:

* :mod:`repro.routing.gpsr` — Greedy Perimeter Stateless Routing (Karp &
  Kung, MobiCom 2000), extended per the paper to route *to regions*: a
  packet targets a region's center and is considered delivered at the
  first node found inside the region polygon ("point of broadcast").
* :mod:`repro.routing.flooding` — network-wide flooding with duplicate
  suppression, scoped (regional) flooding, and TTL-bounded flooding for
  the expanding-ring baseline.

:class:`~repro.routing.stack.NetworkStack` multiplexes both over the
radio's single receive upcall and hands fully-routed payloads to the
application (peer protocol) layer.
"""

from repro.routing.envelopes import FloodEnvelope, GeoEnvelope
from repro.routing.flooding import Flooder
from repro.routing.gpsr import GpsrRouter
from repro.routing.planarization import (
    IncrementalGabriel,
    PlanarizationCache,
    gabriel_neighbors,
    relative_neighborhood,
)
from repro.routing.stack import NetworkStack

__all__ = [
    "FloodEnvelope",
    "Flooder",
    "GeoEnvelope",
    "GpsrRouter",
    "IncrementalGabriel",
    "NetworkStack",
    "PlanarizationCache",
    "gabriel_neighbors",
    "relative_neighborhood",
]
