"""Greedy Perimeter Stateless Routing (Karp & Kung, MobiCom 2000),
extended to route-to-region as described by the paper (§2.2, §6).

Forwarding rules
----------------
* **Greedy mode**: forward to the neighbor strictly closest to the
  destination point, if one is closer than the current node.
* **Perimeter mode** (entered at a local maximum): forward along faces of
  the Gabriel-graph planarization using the right-hand rule — the next
  edge is the one sequentially counterclockwise about the current node
  from the edge the packet arrived on.  The packet records the point
  ``Lp`` where it entered perimeter mode; any node strictly closer to the
  destination than ``Lp`` returns the packet to greedy mode.
* **Failure**: re-traversing the first perimeter edge means the
  destination is unreachable (disconnected component); the packet is
  dropped and the drop callback fires.  A hop budget backstops mobility
  races.

Simplification vs. full GPSR (recorded in DESIGN.md §7): the face-change
test on crossing the ``Lp``–destination line is folded into the
greedy-escape check; neighbor tables come from the ground-truth spatial
index (perfect beaconing).

Route-to-region: the envelope may carry a destination region polygon; the
first node *inside* the polygon that receives the packet is the arrival
point (the paper's "point of broadcast"), regardless of distance to the
region center.
"""

from __future__ import annotations

import math
from typing import Callable, Optional

import numpy as np

from repro.geom import angle_of, distance
from repro.net.network import WirelessNetwork
from repro.net.packet import Packet
from repro.routing.envelopes import GREEDY, PERIMETER, GeoEnvelope
from repro.routing.planarization import PlanarizationCache, gabriel_neighbors

__all__ = ["GpsrRouter"]

DropHandler = Callable[[int, Packet], None]


class GpsrRouter:
    """Stateless geographic router bound to a :class:`WirelessNetwork`.

    The router holds no per-destination state; all routing state lives in
    the packet's :class:`GeoEnvelope`, as in the real protocol.
    """

    def __init__(
        self,
        network: WirelessNetwork,
        on_drop: Optional[DropHandler] = None,
        planarizer: Callable[..., np.ndarray] = gabriel_neighbors,
    ):
        self.network = network
        self.on_drop = on_drop
        self.planarizer = planarizer
        self.stats = network.stats
        # Fast-kernel memos, all keyed on the network's topology
        # generation (positions are frozen within one): the planar
        # neighbor set + its edge angles per node, and the gathered
        # neighbor-position array per node.  Contents are bit-identical
        # to what the uncached code recomputes per packet.
        self._fast = getattr(network, "fast_kernel", False)
        self._planar_cache = PlanarizationCache(planarizer)
        self._angle_cache: dict = {}
        self._nbr_pos_cache: dict = {}
        self._cache_generation = -1
        #: Optional ``callback(src, dst, packet)`` fired on every hop
        #: decision — the tracer's ``gpsr.hop`` span hook.
        self.on_hop = None
        #: Optional :class:`repro.obs.profile.PerfProfiler`; when set,
        #: forwarding decisions are timed under "routing.gpsr".
        self.profile = None

    # -- public API ------------------------------------------------------

    def send(
        self, src: int, envelope: GeoEnvelope, size_bytes: float, category: str = "data"
    ) -> Packet:
        """Inject a geo-routed packet at ``src`` and start forwarding.

        Returns the packet.  If ``src`` itself satisfies the arrival
        condition the packet is *not* self-delivered — callers decide
        local handling before invoking the router.
        """
        packet = Packet(
            payload=envelope,
            size_bytes=size_bytes,
            src=src,
            created_at=self.network.sim.now,
            category=category,
        )
        envelope.path.append(src)
        self._forward(src, packet)
        return packet

    def arrived(self, node_id: int, envelope: GeoEnvelope) -> bool:
        """Has the packet reached its routing destination at ``node_id``?"""
        if envelope.dest_node is not None:
            return node_id == envelope.dest_node
        if envelope.region is not None:
            return self.network.node_in_polygon(node_id, envelope.region)
        pos = self.network.position_of(node_id)
        return distance(pos, envelope.dest_point) <= envelope.arrival_radius

    def handle(self, node_id: int, packet: Packet) -> bool:
        """Process a geo-routed packet at a receiving node.

        Returns True if the packet has arrived (caller delivers the inner
        payload to the application); otherwise the packet was forwarded
        (or dropped) and False is returned.
        """
        envelope: GeoEnvelope = packet.payload
        envelope.path.append(node_id)
        if self.arrived(node_id, envelope):
            return True
        self._forward(node_id, packet)
        return False

    # -- forwarding machinery ----------------------------------------------

    def _forward(self, node_id: int, packet: Packet) -> None:
        if self.profile is not None:
            with self.profile.perf_section("routing.gpsr"):
                self._forward_impl(node_id, packet)
        else:
            self._forward_impl(node_id, packet)

    def _forward_impl(self, node_id: int, packet: Packet) -> None:
        envelope: GeoEnvelope = packet.payload
        if envelope.hops_remaining <= 0:
            self._drop(node_id, packet, "hop_budget")
            return
        envelope.hops_remaining -= 1

        neighbors = self.network.neighbors_of(node_id)
        if neighbors.size == 0:
            self._drop(node_id, packet, "isolated")
            return

        here = self.network.position_of(node_id)
        dest = envelope.dest_point
        positions = self.network.positions()
        if self._fast:
            # neighbors_of() above already refreshed the spatial index,
            # so the generation is stable for the rest of this decision.
            self._sync_caches()

        if envelope.mode == PERIMETER:
            # Escape back to greedy as soon as we beat the entry point.
            if distance(here, dest) < envelope.entry_distance:
                envelope.mode = GREEDY
                envelope.entry_point = None
                envelope.first_edge = None

        if envelope.mode == GREEDY:
            next_hop = self._greedy_next(node_id, here, dest, neighbors, positions)
            if next_hop is not None:
                self._transmit(node_id, next_hop, packet, reset_prev=True)
                return
            # Local maximum: enter perimeter mode.
            envelope.mode = PERIMETER
            envelope.entry_point = here
            envelope.entry_distance = distance(here, dest)
            envelope.prev_node = None
            envelope.first_edge = None

        next_hop = self._perimeter_next(node_id, here, envelope, neighbors, positions)
        if next_hop is None:
            self._drop(node_id, packet, "perimeter_dead_end")
            return
        edge = (node_id, next_hop)
        if envelope.first_edge is None:
            envelope.first_edge = edge
        elif edge == envelope.first_edge:
            # Completed a full face tour without escaping: unreachable.
            self._drop(node_id, packet, "unreachable")
            return
        self._transmit(node_id, next_hop, packet, reset_prev=False)

    def _sync_caches(self) -> None:
        """Reset per-generation memos when the topology advanced."""
        generation = self.network.topology_generation
        if generation != self._cache_generation:
            self._cache_generation = generation
            self._angle_cache.clear()
            self._nbr_pos_cache.clear()
        self._planar_cache.planarizer = self.planarizer
        self._planar_cache.sync(generation)

    def _greedy_next(
        self,
        node_id: int,
        here,
        dest,
        neighbors: np.ndarray,
        positions: np.ndarray,
    ) -> Optional[int]:
        """Neighbor strictly closer to dest than we are, else None."""
        if self._fast:
            nbr_pos = self._nbr_pos_cache.get(node_id)
            if nbr_pos is None:
                nbr_pos = positions[neighbors]
                self._nbr_pos_cache[node_id] = nbr_pos
        else:
            nbr_pos = positions[neighbors]
        diff = nbr_pos - np.asarray(dest, dtype=float)
        dists = np.hypot(diff[:, 0], diff[:, 1])
        best = int(np.argmin(dists))
        if dists[best] < distance(here, dest):
            return int(neighbors[best])
        return None

    def _planar_with_angles(
        self,
        node_id: int,
        here,
        neighbors: np.ndarray,
        positions: np.ndarray,
    ):
        """Planar neighbor ids of ``node_id`` with their edge angles.

        Both are pure functions of the topology generation, so under the
        fast kernel they are computed once per (generation, node) rather
        than once per perimeter-mode packet.  The angles come from the
        same :func:`repro.geom.angle_of` (CPython ``math.atan2``) as the
        uncached path — never a numpy reimplementation, whose libm could
        round differently and silently split the digests.
        """
        if self._fast:
            cached = self._angle_cache.get(node_id)
            if cached is not None:
                return cached
            planar = self._planar_cache.planar(
                node_id, np.asarray(here, dtype=float), positions[neighbors], neighbors
            )
        else:
            planar = self.planarizer(
                np.asarray(here, dtype=float), positions[neighbors], neighbors
            )
        planar_ids = [int(nid) for nid in planar]
        angles = [
            angle_of(here, (positions[nid][0], positions[nid][1]))
            for nid in planar_ids
        ]
        result = (planar_ids, angles)
        if self._fast:
            self._angle_cache[node_id] = result
        return result

    def _perimeter_next(
        self,
        node_id: int,
        here,
        envelope: GeoEnvelope,
        neighbors: np.ndarray,
        positions: np.ndarray,
    ) -> Optional[int]:
        """Right-hand-rule next hop on the planarized neighbor set."""
        planar_ids, angles = self._planar_with_angles(
            node_id, here, neighbors, positions
        )
        if not planar_ids:
            return None
        # Reference direction: the edge we arrived on, or towards the
        # destination when entering perimeter mode.
        if envelope.prev_node is not None:
            ref = angle_of(here, self.network.position_of(envelope.prev_node))
        else:
            ref = angle_of(here, envelope.dest_point)
        best_id: Optional[int] = None
        best_angle = math.inf
        two_pi = 2.0 * math.pi
        for nid, theta in zip(planar_ids, angles):
            ccw = (theta - ref) % two_pi
            if ccw <= 1e-12:  # arrival edge itself: only as last resort
                ccw = two_pi
            if ccw < best_angle:
                best_angle = ccw
                best_id = nid
        if best_id is None and planar_ids:
            best_id = planar_ids[0]
        return best_id

    def _transmit(self, src: int, dst: int, packet: Packet, reset_prev: bool) -> None:
        envelope: GeoEnvelope = packet.payload
        envelope.prev_node = None if reset_prev else src
        hop = packet.next_hop_copy(src=src, dst=dst)
        self.stats.count("gpsr.hops")
        if self.on_hop is not None:
            self.on_hop(src, dst, packet)
        if not self.network.unicast(src, dst, hop):
            # Next hop died or moved away between decision and delivery.
            self._drop(src, packet, "link_failed")

    def _drop(self, node_id: int, packet: Packet, reason: str) -> None:
        self.stats.count("gpsr.dropped")
        self.stats.count(f"gpsr.dropped.{reason}")
        if self.on_drop is not None:
            self.on_drop(node_id, packet)
