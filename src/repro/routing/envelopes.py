"""Routing envelopes.

The radio carries opaque payloads; the routing layer wraps application
messages in envelopes that tell the :class:`~repro.routing.stack.NetworkStack`
how to move them:

* :class:`GeoEnvelope` — geographic routing towards a point (optionally a
  region polygon), via GPSR greedy/perimeter forwarding.
* :class:`FloodEnvelope` — broadcast flooding with duplicate suppression,
  optionally scoped to a region polygon and/or TTL-bounded.

Envelopes are mutable per logical packet (the same object travels with
every hop copy); GPSR keeps its greedy/perimeter state here, mirroring
the packet-header state of the real protocol.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional, Tuple

from repro.geom import Point

__all__ = ["GeoEnvelope", "FloodEnvelope", "GREEDY", "PERIMETER"]

GREEDY = "greedy"
PERIMETER = "perimeter"


@dataclass
class GeoEnvelope:
    """A payload being geo-routed towards ``dest_point``.

    Delivery condition (checked at each receiving node, in order):

    1. ``dest_node`` is set and this node is it;
    2. ``region`` is set and this node lies inside the polygon — the
       paper's route-to-region arrival ("the first node inside the
       destination region ... identified as the point of broadcast");
    3. neither is set and this node is within ``arrival_radius`` of
       ``dest_point``.

    GPSR header state (mode, perimeter entry point, previous hop, first
    perimeter edge) lives here, as in the protocol's packet header.
    """

    inner: Any
    dest_point: Point
    dest_node: Optional[int] = None
    region: Optional[Tuple[Point, ...]] = None
    arrival_radius: float = 1.0
    # -- GPSR header state --
    mode: str = GREEDY
    entry_point: Optional[Point] = None  # Lp: where perimeter mode began
    entry_distance: float = 0.0  # |Lp - dest| at perimeter entry
    prev_node: Optional[int] = None
    first_edge: Optional[Tuple[int, int]] = None  # e0: loop detection
    hops_remaining: int = 128
    path: List[int] = field(default_factory=list)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"GeoEnvelope(dest={self.dest_point}, mode={self.mode}, "
            f"hops_remaining={self.hops_remaining})"
        )


@dataclass
class FloodEnvelope:
    """A payload being flooded.

    ``region`` limits rebroadcast to nodes inside the polygon (the
    paper's *localized flooding*: nodes outside the home region drop the
    request without further processing).  ``ttl`` limits rebroadcast
    depth for the expanding-ring baseline; ``None`` means unbounded
    (plain network-wide flooding).

    ``record_path`` makes every hop append the forwarding node id to a
    per-copy ``path`` list, letting baseline schemes send responses back
    along the reverse path.
    """

    inner: Any
    origin: int
    region: Optional[Tuple[Point, ...]] = None
    ttl: Optional[int] = None
    record_path: bool = False
    path: Tuple[int, ...] = ()

    def hop_copy(self, via: int, ttl: Optional[int]) -> "FloodEnvelope":
        """Copy for rebroadcast by ``via`` with decremented TTL."""
        return FloodEnvelope(
            inner=self.inner,
            origin=self.origin,
            region=self.region,
            ttl=ttl,
            record_path=self.record_path,
            path=self.path + (via,) if self.record_path else (),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        scope = "regional" if self.region is not None else "global"
        return f"FloodEnvelope(origin={self.origin}, scope={scope}, ttl={self.ttl})"
