"""Stationary node placements (used by the static Fig. 9 experiments)."""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.mobility.base import MobilityModel

__all__ = ["StationaryModel", "GridPlacement"]


class StationaryModel(MobilityModel):
    """Nodes placed uniformly at random and never moving.

    Used for the theoretical-validation experiments (paper §6.2.3), which
    run on a static 600 m x 600 m topology.
    """

    def __init__(
        self,
        n_nodes: int,
        width: float,
        height: float,
        rng: np.random.Generator,
        positions: Optional[np.ndarray] = None,
    ):
        super().__init__(n_nodes, width, height)
        if positions is not None:
            positions = np.asarray(positions, dtype=float)
            if positions.shape != (n_nodes, 2):
                raise ValueError(
                    f"positions must have shape ({n_nodes}, 2), got {positions.shape}"
                )
            self._positions = positions.copy()
        else:
            self._positions = np.column_stack(
                [rng.uniform(0, width, n_nodes), rng.uniform(0, height, n_nodes)]
            )

    def positions_at(self, t: float) -> np.ndarray:
        return self._positions

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"StationaryModel(n={self.n_nodes}, {self.width:g}x{self.height:g} m)"


class GridPlacement(MobilityModel):
    """Nodes on a regular grid with optional jitter; never moving.

    Deterministic, connectivity-friendly placement used by tests and by
    the theoretical-validation benches where uniform coverage matters
    (a near-uniform density matches the analysis's ``delta = N/A``).
    """

    def __init__(
        self,
        n_nodes: int,
        width: float,
        height: float,
        rng: Optional[np.random.Generator] = None,
        jitter: float = 0.0,
    ):
        super().__init__(n_nodes, width, height)
        if jitter < 0:
            raise ValueError(f"jitter must be nonnegative, got {jitter}")
        if jitter > 0 and rng is None:
            raise ValueError("jitter requires an rng")
        cols = int(math.ceil(math.sqrt(n_nodes * width / height)))
        cols = max(cols, 1)
        rows = int(math.ceil(n_nodes / cols))
        xs = (np.arange(cols) + 0.5) * (width / cols)
        ys = (np.arange(rows) + 0.5) * (height / rows)
        grid = np.array([(x, y) for y in ys for x in xs])[:n_nodes]
        if jitter > 0:
            assert rng is not None
            grid = grid + rng.uniform(-jitter, jitter, grid.shape)
            grid[:, 0] = np.clip(grid[:, 0], 0, width)
            grid[:, 1] = np.clip(grid[:, 1], 0, height)
        self._positions = grid

    def positions_at(self, t: float) -> np.ndarray:
        return self._positions

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"GridPlacement(n={self.n_nodes}, {self.width:g}x{self.height:g} m)"
