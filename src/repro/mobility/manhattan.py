"""Manhattan-grid mobility.

The paper's future work (§7) calls for verifying PReCinCt "under
different mobility models"; the Manhattan model is the standard urban
counterpart to random waypoint: nodes move along a grid of horizontal
and vertical streets, choosing at each intersection to continue straight
(probability 0.5) or turn left/right (0.25 each), at a uniformly drawn
speed per street segment.

The implementation keeps per-node segment state in numpy arrays, like
:class:`~repro.mobility.random_waypoint.RandomWaypointModel`, and
advances expired segments in batched rounds.
"""

from __future__ import annotations

import numpy as np

from repro.mobility.base import MobilityModel

__all__ = ["ManhattanModel"]

# Direction encoding: 0=east, 1=north, 2=west, 3=south.
_DX = np.array([1.0, 0.0, -1.0, 0.0])
_DY = np.array([0.0, 1.0, 0.0, -1.0])


class ManhattanModel(MobilityModel):
    """Grid-street mobility.

    Parameters
    ----------
    n_streets:
        Number of streets per axis (the plane is divided into
        ``n_streets - 1`` blocks per axis).
    max_speed / min_speed:
        Per-segment speed range, m/s.
    p_turn:
        Probability of turning (split evenly left/right) at an
        intersection; the remainder continues straight when possible.
    """

    def __init__(
        self,
        n_nodes: int,
        width: float,
        height: float,
        rng: np.random.Generator,
        n_streets: int = 7,
        max_speed: float = 10.0,
        min_speed: float = 0.5,
        p_turn: float = 0.5,
    ):
        super().__init__(n_nodes, width, height)
        if n_streets < 2:
            raise ValueError(f"need at least 2 streets per axis, got {n_streets}")
        if not (0 < min_speed <= max_speed):
            raise ValueError(
                f"need 0 < min_speed <= max_speed, got {min_speed}, {max_speed}"
            )
        if not 0.0 <= p_turn <= 1.0:
            raise ValueError(f"p_turn must be in [0, 1], got {p_turn}")
        self.n_streets = n_streets
        self.max_speed = float(max_speed)
        self.min_speed = float(min_speed)
        self.p_turn = float(p_turn)
        self._rng = rng
        self._block_w = width / (n_streets - 1)
        self._block_h = height / (n_streets - 1)

        n = n_nodes
        # Start each node at a random intersection with a random heading.
        ix = rng.integers(0, n_streets, n)
        iy = rng.integers(0, n_streets, n)
        self._origin = np.column_stack([ix * self._block_w, iy * self._block_h])
        self._heading = rng.integers(0, 4, n)
        self._speed = rng.uniform(min_speed, max_speed, n)
        self._seg_start = np.zeros(n)
        self._seg_time = np.zeros(n)  # travel time of current segment
        self._dest = self._origin.copy()
        self._last_t = 0.0
        self._new_segments(np.ones(n, dtype=bool), np.zeros(n))

    def _intersection_of(self, positions: np.ndarray) -> np.ndarray:
        """Snap positions to (ix, iy) street indices."""
        ix = np.rint(positions[:, 0] / self._block_w).astype(np.intp)
        iy = np.rint(positions[:, 1] / self._block_h).astype(np.intp)
        return np.column_stack([ix, iy])

    def _new_segments(self, mask: np.ndarray, t_start: np.ndarray) -> None:
        k = int(mask.sum())
        if k == 0:
            return
        self._origin[mask] = self._dest[mask]
        inter = self._intersection_of(self._origin[mask])
        heading = self._heading[mask].copy()

        # Turn decision: straight with prob 1 - p_turn, else left/right.
        u = self._rng.random(k)
        turn_left = u < self.p_turn / 2.0
        turn_right = (u >= self.p_turn / 2.0) & (u < self.p_turn)
        heading = np.where(turn_left, (heading + 1) % 4, heading)
        heading = np.where(turn_right, (heading - 1) % 4, heading)

        # Bounce off the plane boundary: pick the opposite direction.
        at_east = inter[:, 0] >= self.n_streets - 1
        at_west = inter[:, 0] <= 0
        at_north = inter[:, 1] >= self.n_streets - 1
        at_south = inter[:, 1] <= 0
        heading = np.where((heading == 0) & at_east, 2, heading)
        heading = np.where((heading == 2) & at_west, 0, heading)
        heading = np.where((heading == 1) & at_north, 3, heading)
        heading = np.where((heading == 3) & at_south, 1, heading)

        dest_ix = inter[:, 0] + _DX[heading].astype(np.intp)
        dest_iy = inter[:, 1] + _DY[heading].astype(np.intp)
        dest_ix = np.clip(dest_ix, 0, self.n_streets - 1)
        dest_iy = np.clip(dest_iy, 0, self.n_streets - 1)
        dest = np.column_stack([dest_ix * self._block_w, dest_iy * self._block_h])

        speed = self._rng.uniform(self.min_speed, self.max_speed, k)
        dist = np.hypot(
            dest[:, 0] - self._origin[mask][:, 0],
            dest[:, 1] - self._origin[mask][:, 1],
        )
        # Degenerate zero-length segments (clipped at a corner with no
        # legal move) take one nominal block-time so time still passes.
        seg_time = np.where(dist > 0, dist / speed, self._block_w / speed)

        self._heading[mask] = heading
        self._dest[mask] = dest
        self._speed[mask] = speed
        self._seg_start[mask] = t_start[mask]
        self._seg_time[mask] = seg_time

    def positions_at(self, t: float) -> np.ndarray:
        if t < self._last_t:
            raise ValueError(
                f"mobility time must be nondecreasing (got {t} < {self._last_t})"
            )
        self._last_t = t
        seg_end = self._seg_start + self._seg_time
        expired = seg_end <= t
        while expired.any():
            self._new_segments(expired, seg_end)
            seg_end = self._seg_start + self._seg_time
            expired = seg_end <= t
        with np.errstate(invalid="ignore", divide="ignore"):
            frac = np.where(
                self._seg_time > 0, (t - self._seg_start) / self._seg_time, 1.0
            )
        frac = np.clip(frac, 0.0, 1.0)
        return self._origin + frac[:, None] * (self._dest - self._origin)

    def expected_speed(self) -> float:
        return (self.min_speed + self.max_speed) / 2.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ManhattanModel(n={self.n_nodes}, streets={self.n_streets}, "
            f"v<={self.max_speed:g} m/s)"
        )
