"""Random waypoint mobility (Broch et al., MobiCom'98).

Each node alternates between *travel legs* (straight-line motion at a
uniformly chosen speed towards a uniformly chosen destination) and
*pauses*.  The paper's setup: 1200 m x 1200 m plane, 5 s pause time and
maximum velocities of 2-20 m/s.

The implementation is fully vectorized: leg state is stored in ``(N,)``
and ``(N, 2)`` arrays, and :meth:`positions_at` advances all nodes whose
legs have expired in batched numpy rounds rather than per-node loops —
following the vectorize-the-hot-loop idiom from the HPC guides.
"""

from __future__ import annotations

import numpy as np

from repro.mobility.base import MobilityModel

__all__ = ["RandomWaypointModel"]


class RandomWaypointModel(MobilityModel):
    """Random waypoint motion in a rectangular plane.

    Parameters
    ----------
    n_nodes:
        Number of nodes.
    width, height:
        Plane dimensions in metres.
    max_speed:
        Maximum node speed in m/s.  Speeds are drawn uniformly from
        ``[min_speed, max_speed]``.
    min_speed:
        Minimum speed; kept strictly positive by default (0.1 m/s) to
        avoid the well-known speed-decay pathology of the classic model
        where nodes drawn near zero speed never finish their legs.
    pause_time:
        Pause between legs in seconds (paper default 5 s).
    rng:
        Source of randomness (dedicated "mobility" stream).
    """

    def __init__(
        self,
        n_nodes: int,
        width: float,
        height: float,
        max_speed: float,
        rng: np.random.Generator,
        min_speed: float = 0.1,
        pause_time: float = 5.0,
    ):
        super().__init__(n_nodes, width, height)
        if max_speed <= 0:
            raise ValueError(f"max_speed must be positive, got {max_speed}")
        if not (0 < min_speed <= max_speed):
            raise ValueError(
                f"need 0 < min_speed <= max_speed, got {min_speed}, {max_speed}"
            )
        if pause_time < 0:
            raise ValueError(f"pause_time must be nonnegative, got {pause_time}")
        self.max_speed = float(max_speed)
        self.min_speed = float(min_speed)
        self.pause_time = float(pause_time)
        self._rng = rng

        n = n_nodes
        self._origin = np.column_stack(
            [rng.uniform(0, width, n), rng.uniform(0, height, n)]
        )
        self._dest = self._origin.copy()
        self._speed = np.ones(n)
        self._leg_start = np.zeros(n)
        self._travel_time = np.zeros(n)  # travel portion of the current leg
        self._last_t = 0.0
        # Start every node at the end of a zero-length pause so the first
        # positions_at() call draws fresh legs for everyone.
        self._leg_end = np.zeros(n)  # leg_start + travel_time + pause

    def _new_legs(self, mask: np.ndarray, t_start: np.ndarray) -> None:
        """Draw fresh destinations/speeds for the masked nodes.

        ``t_start`` gives the per-node leg start times (the end of the
        previous leg), preserving continuous trajectories.
        """
        k = int(mask.sum())
        if k == 0:
            return
        self._origin[mask] = self._dest[mask]
        dest = np.column_stack(
            [
                self._rng.uniform(0, self.width, k),
                self._rng.uniform(0, self.height, k),
            ]
        )
        self._dest[mask] = dest
        speed = self._rng.uniform(self.min_speed, self.max_speed, k)
        self._speed[mask] = speed
        dist = np.hypot(
            dest[:, 0] - self._origin[mask][:, 0],
            dest[:, 1] - self._origin[mask][:, 1],
        )
        travel = dist / speed
        self._leg_start[mask] = t_start[mask]
        self._travel_time[mask] = travel
        self._leg_end[mask] = t_start[mask] + travel + self.pause_time

    def positions_at(self, t: float) -> np.ndarray:
        if t < self._last_t:
            raise ValueError(
                f"mobility time must be nondecreasing (got {t} < {self._last_t})"
            )
        self._last_t = t
        # Advance any node whose current leg (travel + pause) has ended.
        # Multiple rounds handle nodes that complete several legs between
        # samples; each round is a batched numpy operation.
        expired = self._leg_end <= t
        while expired.any():
            self._new_legs(expired, self._leg_end)
            expired = self._leg_end <= t
        # Interpolate along the travel portion; clamp to dest during pause.
        elapsed = np.minimum(t - self._leg_start, self._travel_time)
        with np.errstate(invalid="ignore", divide="ignore"):
            frac = np.where(self._travel_time > 0, elapsed / self._travel_time, 1.0)
        frac = np.clip(frac, 0.0, 1.0)
        pos = self._origin + frac[:, None] * (self._dest - self._origin)
        return pos

    def expected_speed(self) -> float:
        """Mean of the uniform speed distribution (ignores pauses)."""
        return (self.min_speed + self.max_speed) / 2.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RandomWaypointModel(n={self.n_nodes}, {self.width:g}x{self.height:g} m, "
            f"v<= {self.max_speed:g} m/s, pause={self.pause_time:g} s)"
        )
