"""Node mobility models.

The paper's mobile experiments use the random waypoint model of Broch et
al. (MobiCom'98): each node repeatedly picks a uniform destination in the
plane and a uniform speed in ``(0, vmax]``, travels there in a straight
line, pauses, and repeats.  The static experiments (Fig. 9) use the
:class:`~repro.mobility.stationary.StationaryModel` with uniform random
placement.

Models expose a vectorized interface: :meth:`MobilityModel.positions_at`
returns an ``(N, 2)`` array for all nodes at a given virtual time, which
the network layer samples when (re)building its spatial index.
"""

from repro.mobility.base import MobilityModel
from repro.mobility.group import GroupMobilityModel
from repro.mobility.manhattan import ManhattanModel
from repro.mobility.random_waypoint import RandomWaypointModel
from repro.mobility.stationary import GridPlacement, StationaryModel

__all__ = [
    "GridPlacement",
    "GroupMobilityModel",
    "ManhattanModel",
    "MobilityModel",
    "RandomWaypointModel",
    "StationaryModel",
]
