"""Reference Point Group Mobility (RPGM, Hong et al. 1999).

Nodes belong to groups; each group's *reference point* performs random
waypoint motion, and members jitter around it within a bounded radius.
RPGM models teams moving together (rescue squads, tour groups, platoons)
— relevant to PReCinCt because correlated motion stresses the
inter-region handoff path: whole groups cross region boundaries at once.

Part of the paper's future-work agenda ("different mobility models").
"""

from __future__ import annotations

import numpy as np

from repro.mobility.base import MobilityModel
from repro.mobility.random_waypoint import RandomWaypointModel

__all__ = ["GroupMobilityModel"]


class GroupMobilityModel(MobilityModel):
    """RPGM: groups of nodes following shared reference points.

    Parameters
    ----------
    n_groups:
        Number of groups; nodes are assigned round-robin.
    group_radius:
        Maximum member offset from the group reference point (metres).
    max_speed / pause_time:
        Reference-point random waypoint parameters.
    member_jitter_interval:
        Members re-draw their intra-group offset at this period; the
        offset is interpolated between draws so motion stays smooth.
    """

    def __init__(
        self,
        n_nodes: int,
        width: float,
        height: float,
        rng: np.random.Generator,
        n_groups: int = 4,
        group_radius: float = 100.0,
        max_speed: float = 6.0,
        pause_time: float = 5.0,
        member_jitter_interval: float = 20.0,
    ):
        super().__init__(n_nodes, width, height)
        if n_groups <= 0:
            raise ValueError(f"n_groups must be positive, got {n_groups}")
        if group_radius < 0:
            raise ValueError(f"group_radius must be nonnegative, got {group_radius}")
        if member_jitter_interval <= 0:
            raise ValueError(
                f"member_jitter_interval must be positive, got {member_jitter_interval}"
            )
        self.n_groups = min(n_groups, n_nodes)
        self.group_radius = float(group_radius)
        self.member_jitter_interval = float(member_jitter_interval)
        self._rng = rng
        self._reference = RandomWaypointModel(
            self.n_groups,
            width,
            height,
            max_speed=max_speed,
            pause_time=pause_time,
            rng=rng,
        )
        self.group_of = np.arange(n_nodes) % self.n_groups
        # Offsets interpolate between an old and a new draw per jitter
        # window, keeping member motion continuous.
        self._offset_a = self._draw_offsets()
        self._offset_b = self._draw_offsets()
        self._window_start = 0.0
        self._last_t = 0.0

    def _draw_offsets(self) -> np.ndarray:
        radius = self.group_radius * np.sqrt(self._rng.random(self.n_nodes))
        theta = self._rng.uniform(0.0, 2.0 * np.pi, self.n_nodes)
        return np.column_stack([radius * np.cos(theta), radius * np.sin(theta)])

    def positions_at(self, t: float) -> np.ndarray:
        if t < self._last_t:
            raise ValueError(
                f"mobility time must be nondecreasing (got {t} < {self._last_t})"
            )
        self._last_t = t
        while t >= self._window_start + self.member_jitter_interval:
            self._offset_a = self._offset_b
            self._offset_b = self._draw_offsets()
            self._window_start += self.member_jitter_interval
        frac = (t - self._window_start) / self.member_jitter_interval
        offsets = (1.0 - frac) * self._offset_a + frac * self._offset_b
        ref = self._reference.positions_at(t)
        pos = ref[self.group_of] + offsets
        pos[:, 0] = np.clip(pos[:, 0], 0.0, self.width)
        pos[:, 1] = np.clip(pos[:, 1], 0.0, self.height)
        return pos

    def expected_speed(self) -> float:
        return self._reference.expected_speed()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"GroupMobilityModel(n={self.n_nodes}, groups={self.n_groups}, "
            f"radius={self.group_radius:g} m)"
        )
