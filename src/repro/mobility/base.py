"""Mobility model interface."""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.geom import Point

__all__ = ["MobilityModel"]


class MobilityModel:
    """Abstract mobility model for ``n_nodes`` nodes in a rectangular plane.

    Subclasses must be *functional in time*: ``positions_at(t)`` may be
    called for any nondecreasing sequence of times and must return
    consistent trajectories.  This lets the network layer sample positions
    lazily instead of stepping every node on a fixed tick.
    """

    def __init__(self, n_nodes: int, width: float, height: float):
        if n_nodes <= 0:
            raise ValueError(f"n_nodes must be positive, got {n_nodes}")
        if width <= 0 or height <= 0:
            raise ValueError(f"plane dimensions must be positive, got {width}x{height}")
        self.n_nodes = n_nodes
        self.width = float(width)
        self.height = float(height)

    @property
    def bounds(self) -> Tuple[float, float]:
        return (self.width, self.height)

    def positions_at(self, t: float) -> np.ndarray:
        """Return an ``(n_nodes, 2)`` float array of positions at time ``t``.

        ``t`` must be nondecreasing across calls (simulation time only
        moves forward); implementations may advance internal state.
        """
        raise NotImplementedError

    def position_of(self, node_id: int, t: float) -> Point:
        """Position of a single node at time ``t`` (convenience)."""
        pos = self.positions_at(t)[node_id]
        return (float(pos[0]), float(pos[1]))

    def expected_speed(self) -> float:
        """Long-run mean speed in m/s (0 for stationary models)."""
        return 0.0
