"""Adaptive request resilience (retries, deadlines, circuit breaking).

PReCinCt's §2.4 fault-tolerance story is a single fixed escalation:
wait ``home_timeout``, try the replica region once, give up.  Under the
sustained loss, crash, and partition plans :mod:`repro.faults` can
inject, that ladder collapses — a partitioned home region turns every
request into a worst-case ``home_timeout + replica_timeout`` stall
before failing.  This package layers three adaptive mechanisms on top
of the geographic routing scheme, all gated by
``SimulationConfig.resilience`` (default **off**, so the classic ladder
and its golden digests are untouched):

* **bounded retries with exponential backoff** and deterministic jitter
  (:class:`~repro.resilience.backoff.BackoffPolicy`), replacing the
  one-shot home→replica escalation with a configurable retry budget per
  remote phase;
* **per-request deadline budgets** (``request_deadline``) so a request
  fails fast once its total latency budget is spent instead of serially
  exhausting every phase timeout;
* a **per-region failure detector**
  (:class:`~repro.resilience.detector.RegionFailureDetector`,
  consecutive-timeout suspicion with α-smoothed decay on success — the
  same EWMA shape as the paper's TTR rule, eq. 2) feeding a
  **circuit breaker** (:class:`~repro.resilience.breaker.CircuitBreaker`)
  that steers new requests straight to the replica region while the
  home region is suspected, with half-open probe requests to detect
  recovery.

Determinism
-----------
The only randomness — backoff jitter — draws from a dedicated
``"resilience"`` RNG stream (the same digest-safe pattern as
:mod:`repro.obs.sampling`): stream independence guarantees the draws
never perturb mobility, workload, MAC jitter, or fault injection, so a
resilient run replays bit-for-bit from its seed and a resilience-*off*
run is byte-identical to one built before this package existed.

See ``docs/RESILIENCE.md`` for semantics, config knobs, and stat keys.
"""

from repro.resilience.backoff import BackoffPolicy
from repro.resilience.breaker import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    CircuitBreaker,
)
from repro.resilience.detector import RegionFailureDetector
from repro.resilience.manager import ResilienceManager

__all__ = [
    "BackoffPolicy",
    "CLOSED",
    "CircuitBreaker",
    "HALF_OPEN",
    "OPEN",
    "RegionFailureDetector",
    "ResilienceManager",
]
