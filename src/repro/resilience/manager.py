"""ResilienceManager — the one object the protocol layer talks to.

Composes the three mechanisms of :mod:`repro.resilience` behind a small
verdict-style API so :class:`repro.core.peer.Peer` stays free of policy:

* :meth:`route_home` — consult the home region's circuit breaker before
  a remote home search: ``"home"`` (route normally), ``"steer"`` (skip
  the suspected region, go straight to the replica), or ``"probe"``
  (route to the region as the half-open liveness probe);
* :meth:`on_home_timeout` / :meth:`on_home_success` — feed the
  per-region failure detector from home-phase outcomes; a timeout that
  pushes suspicion over the threshold trips the breaker;
* :meth:`on_probe_result` — resolve the half-open probe (close the
  breaker and wipe the region's suspicion on success, re-open on
  failure);
* :meth:`retry_delay` — the backoff schedule for bounded in-phase
  retries;
* :meth:`deadline_for` — the absolute fail-fast deadline of a request.

The manager owns all ``resilience.breaker_*`` / ``resilience.probe*``
stat counting and the breaker-transition event-log records, so breaker
accounting cannot drift between call sites.  :meth:`telemetry` is a
pure reader (no RNG, no stat writes) suitable for the telemetry
snapshot hook.

One manager serves the whole simulation: suspicion is a property of a
*region*, and pooling every requester's evidence is what lets the
breaker react after ``suspect_after`` total timeouts instead of
``suspect_after`` timeouts *per peer* — a deliberate simplification
over per-peer failure detectors (documented in docs/RESILIENCE.md).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.ports import CounterStatSink
from repro.resilience.backoff import BackoffPolicy
from repro.resilience.breaker import HALF_OPEN, PASS, PROBE, STEER, CircuitBreaker
from repro.resilience.detector import RegionFailureDetector

__all__ = ["ResilienceManager"]

#: Verdicts returned by :meth:`ResilienceManager.route_home`.
ROUTE_HOME = "home"
ROUTE_STEER = "steer"
ROUTE_PROBE = "probe"


class ResilienceManager:
    """Retry budgets, deadlines, and circuit breaking for one simulation.

    Parameters
    ----------
    retries:
        Retry budget per remote phase (0 disables in-phase retries).
    deadline:
        Total latency budget per request in seconds (None disables
        fail-fast deadlines).
    backoff:
        :class:`BackoffPolicy` for retry spacing; required when
        ``retries > 0``.
    suspect_after / alpha:
        Failure-detector threshold and decay (see
        :class:`RegionFailureDetector`).
    cooldown:
        Circuit-breaker open→half-open cool-down in seconds.
    stats:
        Optional :class:`repro.ports.StatSink` (the sim passes its
        ``StatRegistry``, the service a ``CounterStatSink``); breaker
        and probe transitions are counted here under ``resilience.*``
        keys.  ``None`` allocates a private scratch sink.
    event_hook:
        Optional ``callable(kind, **fields)`` (the network's event-log
        ``trace``, or the service's bus-event publisher) invoked on
        breaker transitions.
    """

    def __init__(
        self,
        *,
        retries: int = 1,
        deadline: Optional[float] = None,
        backoff: Optional[BackoffPolicy] = None,
        suspect_after: float = 3.0,
        alpha: float = 0.5,
        cooldown: float = 10.0,
        stats=None,
        event_hook=None,
    ):
        if retries < 0:
            raise ValueError(f"retry budget must be >= 0, got {retries}")
        if retries > 0 and backoff is None:
            raise ValueError("a retry budget needs a BackoffPolicy")
        if deadline is not None and deadline <= 0.0:
            raise ValueError(f"request deadline must be positive, got {deadline}")
        self.retries = int(retries)
        self.deadline = None if deadline is None else float(deadline)
        self.backoff = backoff
        self.detector = RegionFailureDetector(threshold=suspect_after, alpha=alpha)
        self.cooldown = float(cooldown)
        if stats is None:
            stats = CounterStatSink()  # private scratch sink (tests)
        self._stats = stats
        self._event = event_hook
        self._breakers: Dict[int, CircuitBreaker] = {}
        #: request_id → current retry attempt, for the retry-depth series.
        self._retry_attempts: Dict[int, int] = {}

    @classmethod
    def from_config(cls, cfg, rng=None, stats=None, event_hook=None):
        """Build from a :class:`repro.config.SimulationConfig`."""
        backoff = None
        if cfg.resilience_retries > 0:
            backoff = BackoffPolicy(
                base=cfg.resilience_backoff_base,
                factor=cfg.resilience_backoff_factor,
                jitter=cfg.resilience_backoff_jitter,
                rng=rng,
            )
        return cls(
            retries=cfg.resilience_retries,
            deadline=cfg.request_deadline,
            backoff=backoff,
            suspect_after=cfg.resilience_suspect_after,
            alpha=cfg.resilience_alpha,
            cooldown=cfg.resilience_breaker_cooldown,
            stats=stats,
            event_hook=event_hook,
        )

    # -- small helpers ------------------------------------------------------

    def _emit(self, kind: str, **fields) -> None:
        if self._event is not None:
            self._event(kind, **fields)

    def _breaker(self, region_id: int) -> CircuitBreaker:
        breaker = self._breakers.get(region_id)
        if breaker is None:
            breaker = CircuitBreaker(region_id, cooldown=self.cooldown)
            self._breakers[region_id] = breaker
        return breaker

    # -- routing ------------------------------------------------------------

    def route_home(self, region_id: int, now: float) -> str:
        """Verdict for a request about to geo-route to its home region."""
        breaker = self._breakers.get(region_id)
        if breaker is None:
            return ROUTE_HOME  # never tripped: don't allocate a breaker
        verdict = breaker.route(now)
        if verdict == PASS:
            return ROUTE_HOME
        if verdict == PROBE:
            self._stats.count("resilience.breaker_half_open")
            self._stats.count("resilience.probe")
            self._emit("resilience.breaker_half_open", region=region_id)
            return ROUTE_PROBE
        assert verdict == STEER
        self._stats.count("resilience.breaker_steered")
        return ROUTE_STEER

    # -- detector feeding ----------------------------------------------------

    def on_home_timeout(self, region_id: int, now: float) -> None:
        """A home-phase search targeting ``region_id`` timed out."""
        score = self.detector.record_timeout(region_id)
        if score >= self.detector.threshold:
            if self._breaker(region_id).trip(now):
                self._stats.count("resilience.breaker_open")
                self._emit(
                    "resilience.breaker_open", region=region_id,
                    suspicion=round(score, 3),
                )

    def on_home_success(self, region_id: int, now: float) -> None:
        """The home region answered a (non-probe) search in time."""
        self.detector.record_success(region_id)

    def on_probe_result(self, region_id: int, success: bool, now: float) -> None:
        """The half-open probe for ``region_id`` resolved."""
        breaker = self._breakers.get(region_id)
        if breaker is None or breaker.state != HALF_OPEN:
            return
        breaker.on_probe_result(success, now)
        if success:
            self.detector.clear(region_id)
            self._stats.count("resilience.breaker_close")
            self._emit("resilience.breaker_close", region=region_id)
        else:
            self._stats.count("resilience.probe_failed")
            self._stats.count("resilience.breaker_open")
            self._emit("resilience.breaker_open", region=region_id, reprobe=True)

    # -- retries and deadlines ------------------------------------------------

    def retry_delay(self, attempt: int) -> float:
        """Backoff delay before retry ``attempt`` (1-based)."""
        return self.backoff.delay(attempt)

    def deadline_for(self, issued_at: float) -> Optional[float]:
        """Absolute fail-fast deadline for a request issued at ``issued_at``."""
        if self.deadline is None:
            return None
        return issued_at + self.deadline

    def note_retry(self, request_id: int, attempt: int) -> None:
        """A retry is now pending for ``request_id`` (telemetry only)."""
        self._retry_attempts[request_id] = attempt

    def note_done(self, request_id: int) -> None:
        """``request_id`` left the pending table (served or failed)."""
        self._retry_attempts.pop(request_id, None)

    # -- telemetry (pure reader) ----------------------------------------------

    def breakers_open(self) -> int:
        from repro.resilience.breaker import CLOSED

        return sum(1 for b in self._breakers.values() if b.state != CLOSED)

    def telemetry(self) -> Dict[str, float]:
        """Gauges for the telemetry snapshot; reads state, writes nothing."""
        out: Dict[str, float] = {
            "resilience.breakers_open": float(self.breakers_open()),
            "resilience.retries_inflight": float(len(self._retry_attempts)),
            "resilience.retry_depth": float(
                max(self._retry_attempts.values(), default=0)
            ),
        }
        for rid in sorted(self._breakers):
            out[f"resilience.breaker.region{rid}.state"] = float(
                self._breakers[rid].state
            )
            out[f"resilience.suspicion.region{rid}"] = self.detector.score(rid)
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ResilienceManager(retries={self.retries}, "
            f"deadline={self.deadline}, breakers={len(self._breakers)})"
        )
