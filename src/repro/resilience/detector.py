"""Per-region failure suspicion, α-smoothed like the paper's TTR rule.

The home-region search phase gives one clean liveness signal per
request: either the region answered before ``home_timeout`` or it did
not.  The detector turns that stream of binary outcomes into a
continuous **suspicion score** per region:

* a timeout adds one full unit of suspicion (``score += 1``);
* a success decays the score exponentially (``score *= alpha``) — the
  same EWMA shape as the paper's adaptive TTR estimate (eq. 2), where
  α weighs history against fresh evidence.

``suspected(region)`` is a simple threshold test.  Consecutive
timeouts therefore cross the threshold after ``ceil(threshold)``
failures, while a mixed stream must sustain a high failure fraction to
stay suspected: a single success after a burst of timeouts halves the
score (at the default α = 0.5), mirroring how eq. 2 lets one fresh
observation pull a stale estimate back quickly.

The detector is pure bookkeeping — no RNG, no scheduling, no stats —
so the :class:`~repro.resilience.manager.ResilienceManager` composing
it stays trivially replayable.
"""

from __future__ import annotations

from typing import Dict

__all__ = ["RegionFailureDetector"]


class RegionFailureDetector:
    """Suspicion scores for every region that served (or stalled) a request."""

    def __init__(self, threshold: float = 3.0, alpha: float = 0.5):
        if threshold <= 0.0:
            raise ValueError(f"suspicion threshold must be positive, got {threshold}")
        if not 0.0 <= alpha < 1.0:
            raise ValueError(f"alpha must be in [0, 1), got {alpha}")
        self.threshold = float(threshold)
        self.alpha = float(alpha)
        self._scores: Dict[int, float] = {}

    def record_timeout(self, region_id: int) -> float:
        """A request phase targeting ``region_id`` timed out."""
        score = self._scores.get(region_id, 0.0) + 1.0
        self._scores[region_id] = score
        return score

    def record_success(self, region_id: int) -> float:
        """``region_id`` answered a request phase in time."""
        score = self._scores.get(region_id, 0.0) * self.alpha
        self._scores[region_id] = score
        return score

    def score(self, region_id: int) -> float:
        return self._scores.get(region_id, 0.0)

    def suspected(self, region_id: int) -> bool:
        return self.score(region_id) >= self.threshold

    def clear(self, region_id: int) -> None:
        """Forget a region's history (breaker close = clean slate)."""
        self._scores.pop(region_id, None)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        hot = {r: round(s, 2) for r, s in self._scores.items() if s > 0}
        return (
            f"RegionFailureDetector(threshold={self.threshold}, "
            f"alpha={self.alpha}, scores={hot})"
        )
