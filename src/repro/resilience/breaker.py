"""Per-region circuit breaker: closed → open → half-open → closed.

While a region's failure detector is below threshold the breaker is
**closed** and requests route normally.  When suspicion crosses the
threshold the breaker **opens**: new requests skip the suspected home
region entirely and steer straight to the replica region, saving the
full ``home_timeout`` stall per request.  After a cool-down the breaker
goes **half-open**: exactly one live request is let through as a
*probe*; if the region answers, the breaker closes (and the detector's
history is wiped), if the probe times out the breaker re-opens for
another cool-down.

The breaker never schedules events — every transition is evaluated
lazily against the simulated clock passed by the caller — and it never
draws randomness, so it is replay-exact by construction.  A probe whose
requester dies mid-flight cannot wedge the breaker: if a probe is
outstanding for longer than another full cool-down, the next request
becomes a fresh probe.
"""

from __future__ import annotations

__all__ = ["CLOSED", "OPEN", "HALF_OPEN", "CircuitBreaker"]

#: Breaker states (integer-valued so telemetry can plot them directly).
CLOSED = 0
OPEN = 1
HALF_OPEN = 2

_STATE_NAMES = {CLOSED: "closed", OPEN: "open", HALF_OPEN: "half-open"}

#: Routing verdicts returned by :meth:`CircuitBreaker.route`.
PASS = "pass"
STEER = "steer"
PROBE = "probe"


class CircuitBreaker:
    """Breaker for one region.

    Parameters
    ----------
    cooldown:
        Seconds an open breaker waits before letting a half-open probe
        through.
    """

    def __init__(self, region_id: int, cooldown: float):
        if cooldown <= 0.0:
            raise ValueError(f"breaker cooldown must be positive, got {cooldown}")
        self.region_id = region_id
        self.cooldown = float(cooldown)
        self.state = CLOSED
        self._opened_at = 0.0
        self._probe_at = 0.0

    @property
    def state_name(self) -> str:
        return _STATE_NAMES[self.state]

    # -- transitions (driven by the manager) ------------------------------

    def trip(self, now: float) -> bool:
        """Suspicion crossed threshold; open unless already open.

        Returns True when this call actually opened the breaker.
        """
        if self.state == OPEN:
            return False
        self.state = OPEN
        self._opened_at = now
        return True

    def close(self) -> None:
        self.state = CLOSED

    # -- routing -----------------------------------------------------------

    def route(self, now: float) -> str:
        """Routing verdict for a new request targeting this region.

        ``"pass"`` — closed, route to the region normally;
        ``"steer"`` — skip the region, go straight to the replica;
        ``"probe"`` — route to the region and report the outcome back
        (the caller marks the request as the half-open probe).
        """
        if self.state == CLOSED:
            return PASS
        if self.state == OPEN:
            if now - self._opened_at >= self.cooldown:
                self.state = HALF_OPEN
                self._probe_at = now
                return PROBE
            return STEER
        # HALF_OPEN: a probe is in flight.  A probe lost with its
        # requester would otherwise wedge the breaker — allow a fresh
        # probe once a full cool-down has passed since the last one.
        if now - self._probe_at >= self.cooldown:
            self._probe_at = now
            return PROBE
        return STEER

    def on_probe_result(self, success: bool, now: float) -> None:
        """The half-open probe resolved (served, or timed out)."""
        if self.state != HALF_OPEN:
            return  # stale probe outcome; the breaker already moved on
        if success:
            self.close()
        else:
            self.state = OPEN
            self._opened_at = now

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CircuitBreaker(region={self.region_id}, "
            f"state={self.state_name})"
        )
