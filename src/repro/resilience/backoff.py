"""Exponential backoff with deterministic jitter.

A retry storm is the classic failure amplifier: when a region stops
answering, every requester re-sending on the same fixed schedule
floods the radio channel exactly when it is least able to absorb it.
:class:`BackoffPolicy` spaces attempt ``n`` by

    ``base * factor**(n-1) * (1 + jitter * u)``,   ``u ~ U[0, 1)``

so successive retries spread exponentially and the jitter term
decorrelates requesters that timed out at the same instant.

Determinism
-----------
``u`` is drawn from the dedicated ``"resilience"`` RNG stream
(:class:`~repro.sim.rng.RngRegistry` spawns statistically independent
substreams per name), so the draws replay exactly from the run's seed
and can never perturb any other component's randomness — the same
digest-safe pattern as the head-based trace sampler
(:mod:`repro.obs.sampling`).  With ``jitter=0`` the policy never draws
at all.
"""

from __future__ import annotations

__all__ = ["BackoffPolicy"]


class BackoffPolicy:
    """Computes retry delays; one RNG draw per jittered delay.

    Parameters
    ----------
    base:
        Delay before the first retry (s).
    factor:
        Multiplier applied per additional attempt (>= 1).
    jitter:
        Jitter fraction in ``[0, 1]``: each delay is stretched by a
        uniform factor in ``[1, 1 + jitter)``.  0 disables the RNG
        entirely.
    rng:
        ``numpy.random.Generator`` supplying the uniform draws; required
        when ``jitter > 0``.
    """

    def __init__(self, base: float, factor: float = 2.0,
                 jitter: float = 0.0, rng=None):
        if base <= 0.0:
            raise ValueError(f"backoff base must be positive, got {base}")
        if factor < 1.0:
            raise ValueError(f"backoff factor must be >= 1, got {factor}")
        if not 0.0 <= jitter <= 1.0:
            raise ValueError(f"backoff jitter must be in [0, 1], got {jitter}")
        if jitter > 0.0 and rng is None:
            raise ValueError(f"a jitter fraction ({jitter}) needs an rng stream")
        self.base = float(base)
        self.factor = float(factor)
        self.jitter = float(jitter)
        self._rng = rng
        #: Delays handed out so far (observability; never read back).
        self.draws = 0

    def delay(self, attempt: int) -> float:
        """Delay before retry ``attempt`` (1-based)."""
        if attempt < 1:
            raise ValueError(f"attempt is 1-based, got {attempt}")
        delay = self.base * self.factor ** (attempt - 1)
        if self.jitter > 0.0:
            delay *= 1.0 + self.jitter * float(self._rng.random())
        self.draws += 1
        return delay

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BackoffPolicy(base={self.base}, factor={self.factor}, "
            f"jitter={self.jitter}, draws={self.draws})"
        )
