"""Per-peer Poisson arrival processes for requests and updates.

Each peer runs two independent processes on the simulation clock:

* a **request process** with exponential inter-arrival times of mean
  ``t_request`` (paper: 30 s), each arrival issuing a read for a
  Zipf-sampled key, and
* an **update process** with mean ``t_update``, each arrival issuing a
  write to a Zipf-sampled key.  The consistency experiments sweep the
  ratio ``t_update / t_request`` from 1 (hottest) to 5 (coldest).

The generator is decoupled from the protocol through two callbacks, so
the same workload drives PReCinCt, the flooding baseline, and every
consistency scheme identically.
"""

from __future__ import annotations

from typing import Callable, Generator, List, Optional

import numpy as np

from repro.sim import Process, Simulator, Timeout
from repro.workload.zipf import ZipfSampler

__all__ = ["PoissonArrivals", "WorkloadGenerator"]

RequestCallback = Callable[[int, int], None]  # (peer_id, key)


class PoissonArrivals:
    """One Poisson arrival stream bound to a peer.

    ``warmup`` delays the first arrival uniformly within one mean
    interval so peers do not fire in lock-step at t=0.
    """

    def __init__(
        self,
        sim: Simulator,
        peer_id: int,
        mean_interval: float,
        sampler: ZipfSampler,
        callback: RequestCallback,
        rng: np.random.Generator,
        stop_at: Optional[float] = None,
    ):
        if mean_interval <= 0:
            raise ValueError(f"mean_interval must be positive, got {mean_interval}")
        self.sim = sim
        self.peer_id = peer_id
        self.mean_interval = float(mean_interval)
        self.sampler = sampler
        self.callback = callback
        self.rng = rng
        self.stop_at = stop_at
        self.arrivals = 0
        self.process: Process = sim.spawn(self._run(), name=f"arrivals-{peer_id}")

    def _run(self) -> Generator:
        yield Timeout(float(self.rng.uniform(0.0, self.mean_interval)))
        while True:
            if self.stop_at is not None and self.sim.now >= self.stop_at:
                return
            key = self.sampler.sample()
            self.arrivals += 1
            self.callback(self.peer_id, key)
            yield Timeout(float(self.rng.exponential(self.mean_interval)))

    def stop(self) -> None:
        self.process.kill()


class WorkloadGenerator:
    """Drives request and update streams for a whole peer population."""

    def __init__(
        self,
        sim: Simulator,
        n_peers: int,
        sampler: ZipfSampler,
        rng: np.random.Generator,
        t_request: float = 30.0,
        t_update: Optional[float] = None,
        on_request: Optional[RequestCallback] = None,
        on_update: Optional[RequestCallback] = None,
        stop_at: Optional[float] = None,
        update_sampler: Optional[ZipfSampler] = None,
    ):
        """
        Parameters
        ----------
        t_request:
            Mean inter-request time per peer, seconds (paper: 30 s).
        t_update:
            Mean inter-update time per peer; ``None`` disables updates
            (read-only experiments such as Figs. 4-5 and 9).
        on_request / on_update:
            Protocol hooks, invoked as ``hook(peer_id, key)``.
        update_sampler:
            Key distribution for updates; defaults to the read sampler.
            The paper specifies Zipf for *accesses* only, so experiments
            typically pass a uniform sampler here.
        """
        self.sim = sim
        self.n_peers = n_peers
        self.request_streams: List[PoissonArrivals] = []
        self.update_streams: List[PoissonArrivals] = []
        noop: RequestCallback = lambda peer, key: None
        on_request = on_request or noop
        on_update = on_update or noop
        if update_sampler is None:
            update_sampler = sampler
        for peer in range(n_peers):
            self.request_streams.append(
                PoissonArrivals(
                    sim, peer, t_request, sampler, on_request, rng, stop_at=stop_at
                )
            )
            if t_update is not None:
                self.update_streams.append(
                    PoissonArrivals(
                        sim,
                        peer,
                        t_update,
                        update_sampler,
                        on_update,
                        rng,
                        stop_at=stop_at,
                    )
                )

    @property
    def total_requests(self) -> int:
        return sum(s.arrivals for s in self.request_streams)

    @property
    def total_updates(self) -> int:
        return sum(s.arrivals for s in self.update_streams)

    def stop(self) -> None:
        for stream in self.request_streams + self.update_streams:
            stream.stop()
