"""The shared data set.

Keys are integers ``0..n_items-1``.  Each item has a byte size (drawn
uniformly from a configurable range, heterogeneous so that GD-Size and
GD-LD make different choices) and a monotonically increasing version
number used by the consistency schemes: an update bumps the version at
the authoritative (home-region) copy, and a cached copy is *stale* when
its version lags the authoritative one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

__all__ = ["DataItem", "Database"]


@dataclass
class DataItem:
    """Authoritative state of one data item."""

    key: int
    size_bytes: float
    version: int = 0
    last_update_time: float = 0.0
    #: Interval between the two most recent updates (drives TTR, eq. 2).
    last_update_interval: float = 0.0
    #: Current Time-to-Refresh estimate maintained by the home-region
    #: custodian (Push-with-Adaptive-Pull, eq. 2).  Stored here because
    #: the simulation collapses custodian-held authoritative state into
    #: the shared Database object (message flows are still simulated).
    ttr: float = 0.0

    def bump_version(self, now: float) -> int:
        """Record an update at virtual time ``now``; returns new version."""
        self.last_update_interval = now - self.last_update_time
        self.last_update_time = now
        self.version += 1
        return self.version


class Database:
    """The full collection of data items in the system.

    This object holds *ground truth* (authoritative versions) used both
    by the protocol's home-region peers and by the metrics layer to
    detect false hits.  Peers never read it directly for data access —
    they hold :class:`~repro.core.cache.CachedCopy` replicas.
    """

    def __init__(
        self,
        n_items: int,
        rng: np.random.Generator,
        min_size_bytes: float = 1024.0,
        max_size_bytes: float = 10240.0,
    ):
        if n_items <= 0:
            raise ValueError(f"n_items must be positive, got {n_items}")
        if not (0 < min_size_bytes <= max_size_bytes):
            raise ValueError(
                f"need 0 < min_size <= max_size, got {min_size_bytes}, {max_size_bytes}"
            )
        sizes = rng.uniform(min_size_bytes, max_size_bytes, n_items)
        self.items: List[DataItem] = [
            DataItem(key=k, size_bytes=float(sizes[k])) for k in range(n_items)
        ]

    def __len__(self) -> int:
        return len(self.items)

    def __getitem__(self, key: int) -> DataItem:
        return self.items[key]

    def size_of(self, key: int) -> float:
        return self.items[key].size_bytes

    def version_of(self, key: int) -> int:
        return self.items[key].version

    @property
    def total_bytes(self) -> float:
        """Aggregate size of all items — the paper's 'database size'
        against which cache capacity is expressed (0.5 %-2.5 %)."""
        return float(sum(item.size_bytes for item in self.items))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Database(n_items={len(self.items)}, total={self.total_bytes:.0f} B)"
