"""Zipf popularity sampling.

Access probability of the item with popularity rank ``i`` (1-based) is

    P(i) = (1 / i^theta) / H(n, theta),   H(n, theta) = sum_j 1/j^theta

with skew ``theta`` (the paper's capital-Theta; theta = 0 is uniform,
larger values concentrate mass on few hot items).  Ranks are mapped to
keys through a random permutation so popular items are scattered across
the key space (and hence across home regions).

Sampling uses a precomputed inverse-CDF table: O(n) setup, O(log n) per
draw via binary search — vectorized for batch draws.
"""

from __future__ import annotations

import numpy as np

__all__ = ["ZipfSampler"]


class ZipfSampler:
    """Draws keys with Zipf-distributed popularity."""

    def __init__(
        self,
        n_items: int,
        theta: float,
        rng: np.random.Generator,
        permute: bool = True,
    ):
        if n_items <= 0:
            raise ValueError(f"n_items must be positive, got {n_items}")
        if theta < 0:
            raise ValueError(f"theta must be nonnegative, got {theta}")
        self.n_items = n_items
        self.theta = float(theta)
        self._rng = rng
        ranks = np.arange(1, n_items + 1, dtype=float)
        weights = ranks ** (-self.theta)
        self.probabilities = weights / weights.sum()
        self._cdf = np.cumsum(self.probabilities)
        self._cdf[-1] = 1.0  # guard against float round-off
        if permute:
            self._rank_to_key = rng.permutation(n_items)
        else:
            self._rank_to_key = np.arange(n_items)

    def sample(self) -> int:
        """Draw one key."""
        u = self._rng.random()
        rank = int(np.searchsorted(self._cdf, u, side="right"))
        return int(self._rank_to_key[min(rank, self.n_items - 1)])

    def sample_many(self, count: int) -> np.ndarray:
        """Draw ``count`` keys (vectorized)."""
        u = self._rng.random(count)
        ranks = np.searchsorted(self._cdf, u, side="right")
        ranks = np.minimum(ranks, self.n_items - 1)
        return self._rank_to_key[ranks]

    def probability_of_key(self, key: int) -> float:
        """Access probability of a specific key."""
        rank = int(np.flatnonzero(self._rank_to_key == key)[0])
        return float(self.probabilities[rank])

    def reshuffle(self) -> None:
        """Re-draw the rank-to-key permutation (a popularity shift).

        Models flash-crowd dynamics: yesterday's hot items go cold and
        a new set becomes popular, stressing cache replacement and the
        TTR estimator's adaptivity.
        """
        self._rank_to_key = self._rng.permutation(self.n_items)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ZipfSampler(n={self.n_items}, theta={self.theta})"
