"""Workload generation.

The paper's workload (§6.1): every peer issues read requests and update
requests with Poisson inter-arrival times (mean 30 s each by default);
the requested item is drawn from a Zipf popularity distribution with
skew parameter ``theta``.

:mod:`repro.workload.database` defines the shared data set (keys with
heterogeneous sizes); :mod:`repro.workload.zipf` the popularity law;
:mod:`repro.workload.generator` the per-peer arrival processes.
"""

from repro.workload.database import Database, DataItem
from repro.workload.generator import PoissonArrivals, WorkloadGenerator
from repro.workload.zipf import ZipfSampler

__all__ = [
    "DataItem",
    "Database",
    "PoissonArrivals",
    "WorkloadGenerator",
    "ZipfSampler",
]
