"""Workload generation.

The paper's workload (§6.1): every peer issues read requests and update
requests with Poisson inter-arrival times (mean 30 s each by default);
the requested item is drawn from a Zipf popularity distribution with
skew parameter ``theta``.

:mod:`repro.workload.database` defines the shared data set (keys with
heterogeneous sizes); :mod:`repro.workload.zipf` the popularity law;
:mod:`repro.workload.generator` the per-peer arrival processes.
"""

from repro.workload.database import Database, DataItem
from repro.workload.zipf import ZipfSampler

__all__ = [
    "DataItem",
    "Database",
    "PoissonArrivals",
    "WorkloadGenerator",
    "ZipfSampler",
]


def __getattr__(name: str):
    # The arrival processes schedule themselves on the simulation
    # kernel; loading them lazily keeps the database/popularity half of
    # the package usable from runtimes without repro.sim — the service
    # load generator draws from the same ZipfSampler/Database pair.
    if name in ("PoissonArrivals", "WorkloadGenerator"):
        from repro.workload import generator

        return getattr(generator, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
